//! The logic behind the `trisc` command-line tool: assemble, run and
//! analyze TRISC task systems from the shell.
//!
//! Every subcommand is a plain function returning the text it would
//! print, so the whole surface is unit-testable without spawning
//! processes. The thin `trisc` binary ships with the `rtserver` crate
//! (which layers the `serve` daemon on top of this library) and only
//! touches stdio and the exit code.
//!
//! ```text
//! trisc asm    task.s                      # assemble + summary
//! trisc disasm task.s                      # canonical listing
//! trisc run    task.s [--variant NAME]     # execute, dump registers
//! trisc wcet   task.s [cache options]      # per-path WCET + bound
//! trisc crpd   low.s high.s [cache opts] [--trace-out T.json]
//! trisc wcrt   system.spec [--explain] [--trace-out T.json]
//! trisc sim    system.spec [--horizon N]   # co-simulation + timeline
//! trisc serve  [--host H] [--port P] [--threads N] [--event-threads N]
//!              [--max-inflight N] [--deadline-ms MS] [--idle-timeout-ms MS]
//!              [--poller auto|epoll|poll] [--trace-out T.json]
//! ```
//!
//! `--trace-out` installs an [`rtobs`] recording session for the run and
//! writes a Chrome `trace_event` JSON file (open in `chrome://tracing` or
//! Perfetto); `--explain` appends a per-task WCRT breakdown whose cycle
//! components sum to the reported `R_i`. Neither changes analysis output.
//!
//! (`serve` itself is implemented by the `rtserver` crate, which also
//! ships the `trisc` binary; everything else lives here.)

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dispatch;
pub mod options;
pub mod spec;

use std::borrow::Borrow;
use std::fmt::Write as _;

use crpd::{
    analyze_all, reload_lines, AnalyzedTask, CrpdApproach, CrpdCellCache, CrpdMatrix, TaskParams,
    WcrtParams,
};
use rtprogram::asm::{assemble, disassemble};
use rtprogram::isa::Reg;
use rtprogram::{Program, Simulator};
use rtsched::{render_timeline, simulate, CacheMode, SchedConfig, SchedTask, VariantPolicy};
use rtwcet::{estimate_wcet, structural_wcet_bound};

pub use dispatch::{dispatch, parse, Invocation, USAGE};
pub use options::{CacheOptions, CliError, ServeOptions, StatusOptions};
pub use spec::SystemSpec;

/// `trisc asm`: assemble and summarize a program.
///
/// # Errors
///
/// Returns [`CliError`] on assembly failure.
pub fn cmd_asm(name: &str, source: &str) -> Result<String, CliError> {
    let p = assemble(name, source).map_err(|e| CliError::Asm(e.to_string()))?;
    let mut out = String::new();
    let _ = writeln!(out, "{p}");
    let _ =
        writeln!(out, "code: [{:#x}, {:#x}), entry {:#x}", p.code_base(), p.code_end(), p.entry());
    for seg in p.data_segments() {
        let _ = writeln!(
            out,
            "data: `{}` [{:#x}, {:#x}) = {} words",
            seg.name,
            seg.base,
            seg.end(),
            seg.words.len()
        );
    }
    for (sym, addr) in p.symbols() {
        let _ = writeln!(out, "symbol: {sym} = {addr:#x}");
    }
    for (addr, bound) in p.loop_bounds() {
        let _ = writeln!(out, "loop bound: {addr:#x} x {bound}");
    }
    Ok(out)
}

/// `trisc disasm`: assemble, then print the canonical listing.
///
/// # Errors
///
/// Returns [`CliError`] on assembly failure.
pub fn cmd_disasm(name: &str, source: &str) -> Result<String, CliError> {
    let p = assemble(name, source).map_err(|e| CliError::Asm(e.to_string()))?;
    Ok(disassemble(&p))
}

/// `trisc run`: execute a program (optionally under a named variant) and
/// report registers, steps and accesses.
///
/// # Errors
///
/// Returns [`CliError`] on assembly or execution failure, or an unknown
/// variant name.
pub fn cmd_run(name: &str, source: &str, variant: Option<&str>) -> Result<String, CliError> {
    let p = assemble(name, source).map_err(|e| CliError::Asm(e.to_string()))?;
    let mut sim = match variant {
        None => Simulator::new(&p),
        Some(v) => {
            let variant = p
                .variants()
                .iter()
                .find(|x| x.name == v)
                .ok_or_else(|| CliError::UnknownVariant(v.to_string()))?;
            Simulator::with_variant(&p, variant).map_err(|e| CliError::Exec(e.to_string()))?
        }
    };
    let trace = sim.run_to_halt().map_err(|e| CliError::Exec(e.to_string()))?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "halted after {} instructions ({} memory accesses)",
        trace.instructions,
        trace.accesses.len()
    );
    for r in 0..Reg::COUNT as u8 {
        let reg = Reg::new(r);
        let _ = write!(out, "r{r:<2}={:<12}", sim.reg(reg));
        if r % 4 == 3 {
            out.push('\n');
        }
    }
    Ok(out)
}

/// `trisc wcet`: per-path WCET plus the structural all-miss bound.
///
/// # Errors
///
/// Returns [`CliError`] on assembly or analysis failure.
pub fn cmd_wcet(name: &str, source: &str, opts: &CacheOptions) -> Result<String, CliError> {
    let p = assemble(name, source).map_err(|e| CliError::Asm(e.to_string()))?;
    let est = estimate_wcet(&p, opts.geometry()?, opts.model())
        .map_err(|e| CliError::Analysis(e.to_string()))?;
    let mut out = String::new();
    let _ = writeln!(out, "WCET of `{name}` under {} ({}):", opts.geometry()?, opts.model());
    for v in &est.per_variant {
        let _ = writeln!(
            out,
            "  path {:>12}: {:>9} cycles ({} instructions, {} misses)",
            v.name, v.cycles, v.instructions, v.misses
        );
    }
    let _ = writeln!(out, "  WCET = {} cycles (path `{}`)", est.cycles, est.worst_variant);
    if let Ok(bound) = structural_wcet_bound(&p, opts.model(), 1) {
        let _ = writeln!(out, "  structural all-miss bound: {bound} cycles");
    }
    Ok(out)
}

/// `trisc crpd`: the four per-preemption reload bounds for a task pair.
///
/// # Errors
///
/// Returns [`CliError`] on assembly or analysis failure.
pub fn cmd_crpd(
    low: (&str, &str),
    high: (&str, &str),
    opts: &CacheOptions,
) -> Result<String, CliError> {
    let geometry = opts.geometry()?;
    let model = opts.model();
    let analyze = |name: &str, source: &str, priority: u32| -> Result<AnalyzedTask, CliError> {
        let p = assemble_named(name, source)?;
        AnalyzedTask::analyze(&p, TaskParams { period: u64::MAX, priority }, geometry, model)
            .map_err(|e| CliError::Analysis(e.to_string()))
    };
    let preempted = analyze(low.0, low.1, 2)?;
    let preempting = analyze(high.0, high.1, 1)?;
    Ok(cmd_crpd_with(&preempted, &preempting, opts))
}

/// The rendering half of [`cmd_crpd`], over already-analyzed tasks: used
/// by the analysis server, which reuses memoized [`AnalyzedTask`]
/// artifacts instead of re-analyzing per request. Both entry points emit
/// byte-identical reports for the same inputs.
pub fn cmd_crpd_with(
    preempted: &AnalyzedTask,
    preempting: &AnalyzedTask,
    opts: &CacheOptions,
) -> String {
    let geometry = preempted.geometry();
    let model = opts.model();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "cache lines `{}` must reload after one preemption by `{}` ({geometry}):",
        preempted.name(),
        preempting.name()
    );
    for approach in CrpdApproach::ALL {
        let _ = writeln!(
            out,
            "  {approach}: {:>5} lines ({} cycles at Cmiss={})",
            reload_lines(approach, preempted, preempting),
            reload_lines(approach, preempted, preempting) as u64 * model.miss_penalty,
            model.miss_penalty
        );
    }
    out
}

/// `trisc footprint`: cache-footprint report for a program — per-path
/// block counts, line occupancy, useful-block lines, and the per-set
/// pressure histogram.
///
/// # Errors
///
/// Returns [`CliError`] on assembly or analysis failure.
pub fn cmd_footprint(name: &str, source: &str, opts: &CacheOptions) -> Result<String, CliError> {
    let geometry = opts.geometry()?;
    let p = assemble(name, source).map_err(|e| CliError::Asm(e.to_string()))?;
    let task = AnalyzedTask::analyze(
        &p,
        TaskParams { period: u64::MAX, priority: 1 },
        geometry,
        opts.model(),
    )
    .map_err(|e| CliError::Analysis(e.to_string()))?;
    let mut out = String::new();
    let _ = writeln!(out, "cache footprint of `{name}` under {geometry}:");
    for path in task.paths() {
        let _ = writeln!(
            out,
            "  path {:>12}: {:>5} blocks over {:>4} sets, {:>5} lines",
            path.name,
            path.blocks.block_count(),
            path.blocks.subset_count(),
            path.blocks.line_bound()
        );
    }
    let all = task.all_blocks();
    let _ = writeln!(
        out,
        "  union: {} blocks, {} lines of {} ({:.1}% of the cache)",
        all.block_count(),
        all.line_bound(),
        geometry.total_lines(),
        100.0 * all.line_bound() as f64 / geometry.total_lines() as f64
    );
    let _ = writeln!(
        out,
        "  useful (worst point over paths): {} lines; max set pressure {} of {} ways",
        task.useful_line_bound(),
        all.max_set_pressure(),
        geometry.ways()
    );
    let histogram = all.occupancy_histogram();
    let _ = writeln!(out, "  sets holding k blocks:");
    for (k, count) in histogram.iter().enumerate() {
        if *count > 0 {
            let _ = writeln!(out, "    k={k}: {count:>5} sets");
        }
    }
    Ok(out)
}

/// `trisc wcrt`: WCRT of every task of a [`SystemSpec`] under each
/// approach.
///
/// # Errors
///
/// Returns [`CliError`] on spec, assembly or analysis failure.
pub fn cmd_wcrt(spec: &SystemSpec) -> Result<String, CliError> {
    let tasks = spec.analyzed_tasks()?;
    cmd_wcrt_with(spec, &tasks)
}

/// The rendering half of [`cmd_wcrt`], over already-analyzed tasks
/// (`&[AnalyzedTask]`, `&[Arc<AnalyzedTask>]`, …): used by the analysis
/// server, which reuses memoized artifacts instead of re-analyzing per
/// request. Both entry points emit byte-identical reports for the same
/// inputs.
///
/// # Errors
///
/// Returns [`CliError::Options`] for an invalid cache geometry.
pub fn cmd_wcrt_with<T: Borrow<AnalyzedTask> + Sync>(
    spec: &SystemSpec,
    tasks: &[T],
) -> Result<String, CliError> {
    cmd_wcrt_cached(spec, tasks, &CrpdCellCache::default())
}

/// [`cmd_wcrt_with`] through a shared [`CrpdCellCache`]: pairwise CRPD
/// bounds whose `(approach, preempted, preempting)` content keys were
/// already bounded — by an earlier request against the same cache — are
/// reused instead of recomputed. The report is byte-identical to the
/// uncached path; the cache only changes *which* cells run.
///
/// # Errors
///
/// Returns [`CliError::Options`] for an invalid cache geometry.
pub fn cmd_wcrt_cached<T: Borrow<AnalyzedTask> + Sync>(
    spec: &SystemSpec,
    tasks: &[T],
    cells: &CrpdCellCache,
) -> Result<String, CliError> {
    let geometry = spec.cache.geometry()?;
    let model = spec.cache.model();
    let params = WcrtParams {
        miss_penalty: model.miss_penalty,
        ctx_switch: spec.ctx_switch,
        max_iterations: 10_000,
    };
    let mut out = String::new();
    let _ = writeln!(out, "WCRT under {geometry}, {} (Ccs={}):", model, spec.ctx_switch);
    let _ = writeln!(
        out,
        "  {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "task", "App. 1", "App. 2", "App. 3", "App. 4", "period"
    );
    // The four approaches are independent; fan them out over the current
    // rtpar pool (matrix cells fan out again inside). Results land in
    // approach order, so the report bytes never depend on the pool size.
    let per_approach: Vec<Vec<crpd::WcrtResult>> = rtpar::par_map(&CrpdApproach::ALL, |a| {
        analyze_all(tasks, &CrpdMatrix::compute_with(*a, tasks, cells), &params)
    });
    for (i, t) in tasks.iter().map(Borrow::borrow).enumerate() {
        let cell = |a: usize| {
            let r = per_approach[a][i];
            if r.schedulable {
                r.cycles.to_string()
            } else if r.stop == crpd::StopReason::IterationCap {
                format!("{}!", r.cycles)
            } else {
                format!("{}*", r.cycles)
            }
        };
        let _ = writeln!(
            out,
            "  {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
            t.name(),
            cell(0),
            cell(1),
            cell(2),
            cell(3),
            t.params().period
        );
    }
    let _ = writeln!(out, "  (*: not schedulable under that bound; !: iteration cap hit)");
    Ok(out)
}

/// How many cache sets the `--explain` breakdown names per preempting
/// task: the top contributors to the combined (App. 4) overlap bound.
const EXPLAIN_TOP_SETS: usize = 4;

/// `trisc wcrt --explain`: the [`cmd_wcrt_with`] table followed by a
/// per-task breakdown of every approach's WCRT into its Eq. 7 terms —
/// WCET, higher-priority interference, CRPD reload cycles and context
/// switches (the four always sum to the reported `R_i`) — plus the cache
/// sets contributing most to the combined overlap bound per preempting
/// task.
///
/// The breakdown is a deterministic recomputation
/// ([`crpd::explain_response_time`]) rather than recorder state, so the
/// output is byte-identical whether or not tracing is enabled.
///
/// # Errors
///
/// Returns [`CliError::Options`] for an invalid cache geometry.
pub fn cmd_wcrt_explain<T: Borrow<AnalyzedTask> + Sync>(
    spec: &SystemSpec,
    tasks: &[T],
) -> Result<String, CliError> {
    // One cell cache spans the table and the breakdown, so the matrices
    // here are served entirely from the cells the table already bounded.
    let cells = CrpdCellCache::default();
    let mut out = cmd_wcrt_cached(spec, tasks, &cells)?;
    let model = spec.cache.model();
    let params = WcrtParams {
        miss_penalty: model.miss_penalty,
        ctx_switch: spec.ctx_switch,
        max_iterations: 10_000,
    };
    let matrices: Vec<CrpdMatrix> =
        rtpar::par_map(&CrpdApproach::ALL, |a| CrpdMatrix::compute_with(*a, tasks, &cells));
    let _ = writeln!(out, "\nWCRT breakdown (cycles; wcet + interference + crpd + ctx = R):");
    for (i, t) in tasks.iter().map(Borrow::borrow).enumerate() {
        let _ = writeln!(
            out,
            "  {} (C={}, period {}, priority {}):",
            t.name(),
            t.wcet(),
            t.params().period,
            t.params().priority
        );
        for matrix in &matrices {
            let b = crpd::explain_response_time(tasks, matrix, i, &params);
            let _ = writeln!(
                out,
                "    {}: R={} = {} + {} + {} + {} ({} preemptions, {})",
                matrix.approach,
                b.result.cycles,
                b.wcet,
                b.interference,
                b.crpd,
                b.ctx_switch,
                b.preemptions,
                b.result.stop
            );
        }
        for hp in tasks.iter().map(Borrow::borrow) {
            if hp.params().priority >= t.params().priority {
                continue;
            }
            let contributions = crpd::combined_overlap_breakdown(t, hp);
            if contributions.is_empty() {
                continue;
            }
            let shown: Vec<String> = contributions
                .iter()
                .take(EXPLAIN_TOP_SETS)
                .map(|c| format!("set {}: {} (min: {})", c.set.as_usize(), c.lines, c.cap.label()))
                .collect();
            let _ = writeln!(
                out,
                "    top sets vs `{}` (of {} overlapping): {}",
                hp.name(),
                contributions.len(),
                shown.join(", ")
            );
        }
    }
    Ok(out)
}

/// `trisc sim`: run the co-simulation over `horizon` cycles (default:
/// twice the longest period) and report responses plus a timeline.
///
/// # Errors
///
/// Returns [`CliError`] on spec or simulation failure.
pub fn cmd_sim(spec: &SystemSpec, horizon: Option<u64>) -> Result<String, CliError> {
    let programs = spec.programs()?;
    cmd_sim_with(spec, &programs, horizon)
}

/// The simulation half of [`cmd_sim`], over already-assembled programs
/// (one per spec task, in spec order): used by the analysis server, whose
/// task sources arrive inline over the wire. Both entry points emit
/// byte-identical reports for the same inputs.
///
/// # Errors
///
/// Returns [`CliError`] on an invalid geometry or simulation failure.
pub fn cmd_sim_with(
    spec: &SystemSpec,
    programs: &[Program],
    horizon: Option<u64>,
) -> Result<String, CliError> {
    let geometry = spec.cache.geometry()?;
    let sched_tasks: Vec<SchedTask> = programs
        .iter()
        .zip(&spec.tasks)
        .map(|(p, t)| SchedTask::new(p.clone(), t.period, t.priority))
        .collect();
    let horizon =
        horizon.unwrap_or_else(|| spec.tasks.iter().map(|t| t.period).max().unwrap_or(1) * 2);
    let config = SchedConfig {
        geometry,
        model: spec.cache.model(),
        ctx_switch: spec.ctx_switch,
        horizon,
        variant_policy: VariantPolicy::Worst,
        cache_mode: CacheMode::Shared,
        replacement: Default::default(),
        l2: None,
    };
    let report = simulate(&sched_tasks, &config).map_err(|e| CliError::Sim(e.to_string()))?;
    let mut out = String::new();
    let _ = writeln!(out, "simulated {} cycles:", report.end_time);
    for t in &report.tasks {
        let _ = writeln!(
            out,
            "  {:>10}: {} jobs, max response {}, {} preemptions, {} deadline misses",
            t.name, t.completed, t.max_response, t.preemptions, t.deadline_misses
        );
    }
    let names: Vec<&str> = report.tasks.iter().map(|t| t.name.as_str()).collect();
    let periods: Vec<u64> = spec.tasks.iter().map(|t| t.period).collect();
    out.push_str(&render_timeline(&report.slices, &names, &periods, horizon, 80));
    Ok(out)
}

/// Loads a program from already-read source; helper shared by spec
/// loading.
pub(crate) fn assemble_named(name: &str, source: &str) -> Result<Program, CliError> {
    let _span = rtobs::span_labeled("assemble", || name.to_string());
    assemble(name, source).map_err(|e| CliError::Asm(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    const COUNT: &str =
        "start: li r1, 5\nloop: addi r1, r1, -1\nbne r1, r0, loop\n.bound loop, 5\nhalt\n";

    #[test]
    fn asm_summarizes() {
        let out = cmd_asm("count", COUNT).unwrap();
        assert!(out.contains("program `count`"));
        assert!(out.contains("loop bound"));
        assert!(out.contains("symbol: loop"));
    }

    #[test]
    fn asm_reports_errors() {
        let err = cmd_asm("bad", "frobnicate r1\n").unwrap_err();
        assert!(matches!(err, CliError::Asm(_)));
        assert!(err.to_string().contains("frobnicate"));
    }

    #[test]
    fn disasm_round_trips() {
        let listing = cmd_disasm("count", COUNT).unwrap();
        let again = cmd_asm("count", &listing).unwrap();
        assert!(again.contains("program `count`"));
    }

    #[test]
    fn run_reports_registers() {
        let out = cmd_run("count", COUNT, None).unwrap();
        assert!(out.contains("halted after 12 instructions"));
        assert!(out.contains("r1 =0") || out.contains("r1 =0".trim()) || out.contains("r1"));
    }

    #[test]
    fn run_rejects_unknown_variant() {
        let err = cmd_run("count", COUNT, Some("nope")).unwrap_err();
        assert!(matches!(err, CliError::UnknownVariant(_)));
    }

    #[test]
    fn footprint_reports_lines_and_pressure() {
        let src = ".data 0x100000\nbuf: .word 1,2,3,4,5,6,7,8\n.text 0x1000\nstart: li r1, buf\nld r2, 0(r1)\nld r2, 16(r1)\nld r2, 0(r1)\nhalt\n";
        let out = cmd_footprint("t", src, &CacheOptions::default()).unwrap();
        assert!(out.contains("union:"), "{out}");
        assert!(out.contains("useful"), "{out}");
        assert!(out.contains("k=1"), "{out}");
    }

    #[test]
    fn wcet_prints_paths_and_bound() {
        let out = cmd_wcet("count", COUNT, &CacheOptions::default()).unwrap();
        assert!(out.contains("WCET ="));
        assert!(out.contains("structural all-miss bound"));
    }

    #[test]
    fn explain_components_sum_to_the_reported_wcrt() {
        let dir = std::env::temp_dir().join(format!("trisc-explain-lib-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join("hi.s"),
            ".data 0x100000\nbuf: .word 1,2,3\n.text 0x1000\nstart: li r1, buf\nld r2, 0(r1)\nld r2, 0(r1)\nhalt\n",
        )
        .unwrap();
        std::fs::write(
            dir.join("lo.s"),
            ".data 0x100400\nbuf: .word 7\n.text 0x2000\nstart: li r1, buf\nld r2, 0(r1)\nld r2, 0(r1)\nhalt\n",
        )
        .unwrap();
        std::fs::write(
            dir.join("sys.spec"),
            "cache 64 2 16\ncmiss 20\nccs 50\ntask hi hi.s 5000 1\ntask lo lo.s 50000 2\n",
        )
        .unwrap();
        let spec = SystemSpec::load(&dir.join("sys.spec")).unwrap();
        let tasks = spec.analyzed_tasks().unwrap();
        let out = cmd_wcrt_explain(&spec, &tasks).unwrap();
        // Every breakdown line's four terms must sum to its R, exactly.
        let mut parsed = 0;
        for line in out.lines().filter(|l| l.trim_start().starts_with("App. ")) {
            let rest = line.split("R=").nth(1).unwrap();
            let r: u64 = rest.split(' ').next().unwrap().parse().unwrap();
            let terms = rest.split(" = ").nth(1).unwrap().split(" (").next().unwrap();
            let sum: u64 = terms.split(" + ").map(|t| t.trim().parse::<u64>().unwrap()).sum();
            assert_eq!(sum, r, "{line}");
            parsed += 1;
        }
        assert_eq!(parsed, 2 * CrpdApproach::ALL.len(), "{out}");
        // `lo` is preempted by `hi`; their footprints collide, so the
        // breakdown names the contributing sets.
        assert!(out.contains("top sets vs `hi`"), "{out}");
        // The table half is byte-identical to the plain report.
        let plain = cmd_wcrt_with(&spec, &tasks).unwrap();
        assert!(out.starts_with(&plain), "explain must append, not rewrite");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn crpd_prints_all_four_approaches() {
        let low = "start: li r1, 0x100000\nld r2, 0(r1)\nld r2, 0(r1)\nhalt\n";
        // No data segment at 0x100000 -> would fault; use self-contained
        // programs instead.
        let _ = low;
        let a = ".data 0x100000\nbuf: .word 1,2,3,4\n.text 0x1000\nstart: li r1, buf\nld r2, 0(r1)\nld r2, 4(r1)\nld r2, 0(r1)\nhalt\n";
        let b =
            ".data 0x100040\nbuf: .word 9\n.text 0x2000\nstart: li r1, buf\nld r2, 0(r1)\nhalt\n";
        let out = cmd_crpd(("low", a), ("high", b), &CacheOptions::default()).unwrap();
        for label in ["App. 1", "App. 2", "App. 3", "App. 4"] {
            assert!(out.contains(label), "{out}");
        }
    }
}
