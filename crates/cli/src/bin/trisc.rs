//! `trisc` — assemble, run and analyze TRISC task systems. All logic
//! lives in [`rtcli`]; this shim only touches stdio and the exit code.

use std::process::ExitCode;

fn main() -> ExitCode {
    match rtcli::dispatch(std::env::args().skip(1).collect()) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("trisc: {e}");
            ExitCode::from(2)
        }
    }
}
