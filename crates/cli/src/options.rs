//! Shared command-line options and the CLI error type.

use std::fmt;

use rtcache::{CacheGeometry, GeometryError};
use rtwcet::TimingModel;

/// Cache/timing options shared by the analysis subcommands
/// (`--sets`, `--ways`, `--line`, `--cmiss`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheOptions {
    /// Number of cache sets.
    pub sets: u32,
    /// Number of ways.
    pub ways: u32,
    /// Line size in bytes.
    pub line: u32,
    /// Miss penalty in cycles.
    pub cmiss: u64,
}

impl Default for CacheOptions {
    /// The paper's configuration: 512 × 4 × 16 B, 20-cycle misses.
    fn default() -> Self {
        CacheOptions { sets: 512, ways: 4, line: 16, cmiss: 20 }
    }
}

impl CacheOptions {
    /// Builds the cache geometry.
    ///
    /// # Errors
    ///
    /// Returns [`CliError::Options`] for invalid dimensions.
    pub fn geometry(&self) -> Result<CacheGeometry, CliError> {
        CacheGeometry::new(self.sets, self.ways, self.line)
            .map_err(|e: GeometryError| CliError::Options(e.to_string()))
    }

    /// Builds the timing model.
    pub fn model(&self) -> TimingModel {
        TimingModel::with_miss_penalty(self.cmiss)
    }

    /// Consumes recognized `--flag value` pairs from an argument list,
    /// leaving the rest untouched.
    ///
    /// # Errors
    ///
    /// Returns [`CliError::Options`] for malformed values or a flag
    /// missing its value.
    pub fn parse_from(&mut self, args: &mut Vec<String>) -> Result<(), CliError> {
        let mut remaining = Vec::with_capacity(args.len());
        let mut it = args.drain(..);
        while let Some(arg) = it.next() {
            let target: Option<&mut dyn FnMut(u64)> = None;
            let _ = target;
            match arg.as_str() {
                "--sets" | "--ways" | "--line" | "--cmiss" => {
                    let value = it
                        .next()
                        .ok_or_else(|| CliError::Options(format!("{arg} needs a value")))?;
                    let parsed: u64 = value
                        .parse()
                        .map_err(|_| CliError::Options(format!("bad value for {arg}: {value}")))?;
                    match arg.as_str() {
                        "--sets" => self.sets = parsed as u32,
                        "--ways" => self.ways = parsed as u32,
                        "--line" => self.line = parsed as u32,
                        _ => self.cmiss = parsed,
                    }
                }
                _ => remaining.push(arg),
            }
        }
        drop(it);
        *args = remaining;
        Ok(())
    }
}

/// Options of the `trisc serve` subcommand (`--host`, `--port`,
/// `--threads`, `--trace-out`). The daemon itself lives in the `rtserver`
/// crate; parsing stays here with the other CLI surface so it is testable
/// alongside it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeOptions {
    /// Interface to bind.
    pub host: String,
    /// TCP port to bind; `0` asks the OS for an ephemeral port.
    pub port: u16,
    /// The server's one parallelism knob: connection workers *and* the
    /// `rtpar` analysis pool that intra-request analysis fans out on.
    pub threads: usize,
    /// Keep an `rtobs` recorder installed for the server's lifetime and
    /// write the Chrome trace of everything it served here on shutdown.
    pub trace_out: Option<String>,
    /// Slow-request threshold in milliseconds (`--slow-ms`): any request
    /// at least this slow has its full span tree captured into the
    /// bounded black-box buffer served by the `flight` endpoint. `None`
    /// disables capture.
    pub slow_ms: Option<u64>,
    /// Flight-recorder ring capacity (`--flight-capacity`): how many of
    /// the most recent per-request records the `journal` endpoint keeps.
    pub flight_capacity: usize,
    /// Reactor event loops (`--event-threads`): how many threads
    /// multiplex connection I/O. A handful suffices for thousands of
    /// connections; analysis parallelism stays on `--threads`.
    pub event_threads: usize,
    /// Admission cap (`--max-inflight`): analysis requests arriving while
    /// this many are already in flight are shed with a typed
    /// `overloaded` error. `0` sheds every analysis request (useful in
    /// tests); ops-plane commands are never shed.
    pub max_inflight: u64,
    /// Server-wide queue-wait deadline in milliseconds (`--deadline-ms`):
    /// analysis requests that waited at least this long before pickup are
    /// rejected with a typed `deadline_exceeded` error instead of being
    /// analyzed late. Requests may override via their `deadline_ms`
    /// field. `None` disables the server-wide deadline.
    pub deadline_ms: Option<u64>,
    /// Idle-connection timeout in milliseconds (`--idle-timeout-ms`):
    /// connections with no traffic and no request in flight for this
    /// long are closed (slowloris defense). `None` keeps idle
    /// connections forever.
    pub idle_timeout_ms: Option<u64>,
    /// Readiness backend (`--poller`): `auto` (default), `epoll`, or
    /// `poll`. Kept as a string here so the CLI crate stays decoupled
    /// from the reactor; the server validates and converts.
    pub poller: String,
    /// Cluster peers file (`--cluster PATH`): one `host:port` ring member
    /// per line. `None` runs a plain single-node server.
    pub cluster: Option<String>,
    /// This node's line index in the peers file (`--node-id N`). Required
    /// with `--cluster` unless `--front` is given.
    pub node_id: Option<usize>,
    /// Run as a stateless front (`--front`): a ring member of nothing
    /// that routes every analysis key to its owner node. Mutually
    /// exclusive with `--node-id`.
    pub front: bool,
    /// Peer-fetch deadline in milliseconds (`--peer-deadline-ms`): how
    /// long a non-owner waits for the owning node before computing
    /// locally.
    pub peer_deadline_ms: u64,
    /// Bound on peer-fetched replica artifacts (`--replica-capacity`):
    /// artifacts owned by other nodes are cached up to this count, then
    /// evicted — the N× per-node memory saving of cluster mode.
    pub replica_capacity: usize,
}

impl Default for ServeOptions {
    /// Loopback on port 7227 with [`rtpar::default_threads`] threads
    /// (`RTPAR_THREADS`, or one per available core capped at 8; analysis
    /// requests are CPU-bound) — the same default the analysis pool uses,
    /// so the two are never configured apart.
    fn default() -> Self {
        ServeOptions {
            host: "127.0.0.1".to_string(),
            port: 7227,
            threads: rtpar::default_threads(),
            trace_out: None,
            slow_ms: None,
            flight_capacity: 512,
            event_threads: 2,
            max_inflight: 256,
            deadline_ms: None,
            idle_timeout_ms: None,
            poller: "auto".to_string(),
            cluster: None,
            node_id: None,
            front: false,
            peer_deadline_ms: 2000,
            replica_capacity: 256,
        }
    }
}

impl ServeOptions {
    /// Consumes recognized `--flag value` pairs from an argument list,
    /// leaving the rest untouched.
    ///
    /// # Errors
    ///
    /// Returns [`CliError::Options`] for malformed values or a flag
    /// missing its value.
    pub fn parse_from(&mut self, args: &mut Vec<String>) -> Result<(), CliError> {
        let mut remaining = Vec::with_capacity(args.len());
        let mut it = args.drain(..);
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--front" => self.front = true,
                "--host" | "--port" | "--threads" | "--trace-out" | "--slow-ms"
                | "--flight-capacity" | "--event-threads" | "--max-inflight" | "--deadline-ms"
                | "--idle-timeout-ms" | "--poller" | "--cluster" | "--node-id"
                | "--peer-deadline-ms" | "--replica-capacity" => {
                    let value = it
                        .next()
                        .ok_or_else(|| CliError::Options(format!("{arg} needs a value")))?;
                    match arg.as_str() {
                        "--host" => self.host = value,
                        "--trace-out" => self.trace_out = Some(value),
                        "--port" => {
                            self.port = value.parse().map_err(|_| {
                                CliError::Options(format!("bad value for --port: {value}"))
                            })?;
                        }
                        "--slow-ms" => {
                            self.slow_ms = Some(value.parse().map_err(|_| {
                                CliError::Options(format!("bad value for --slow-ms: {value}"))
                            })?);
                        }
                        "--flight-capacity" => {
                            self.flight_capacity =
                                value.parse().ok().filter(|n| *n > 0).ok_or_else(|| {
                                    CliError::Options(format!(
                                        "bad value for --flight-capacity: {value}"
                                    ))
                                })?;
                        }
                        "--event-threads" => {
                            self.event_threads =
                                value.parse().ok().filter(|n| *n > 0).ok_or_else(|| {
                                    CliError::Options(format!(
                                        "bad value for --event-threads: {value}"
                                    ))
                                })?;
                        }
                        "--max-inflight" => {
                            self.max_inflight = value.parse().map_err(|_| {
                                CliError::Options(format!("bad value for --max-inflight: {value}"))
                            })?;
                        }
                        "--deadline-ms" => {
                            self.deadline_ms = Some(value.parse().map_err(|_| {
                                CliError::Options(format!("bad value for --deadline-ms: {value}"))
                            })?);
                        }
                        "--idle-timeout-ms" => {
                            self.idle_timeout_ms =
                                value.parse().ok().filter(|n| *n > 0).map_or_else(
                                    || {
                                        Err(CliError::Options(format!(
                                            "bad value for --idle-timeout-ms: {value}"
                                        )))
                                    },
                                    |n| Ok(Some(n)),
                                )?;
                        }
                        "--poller" => {
                            if !matches!(value.as_str(), "auto" | "epoll" | "poll") {
                                return Err(CliError::Options(format!(
                                    "bad value for --poller: {value} (expected auto|epoll|poll)"
                                )));
                            }
                            self.poller = value;
                        }
                        "--cluster" => self.cluster = Some(value),
                        "--node-id" => {
                            self.node_id = Some(value.parse().map_err(|_| {
                                CliError::Options(format!("bad value for --node-id: {value}"))
                            })?);
                        }
                        "--peer-deadline-ms" => {
                            self.peer_deadline_ms =
                                value.parse().ok().filter(|n| *n > 0).ok_or_else(|| {
                                    CliError::Options(format!(
                                        "bad value for --peer-deadline-ms: {value}"
                                    ))
                                })?;
                        }
                        "--replica-capacity" => {
                            self.replica_capacity =
                                value.parse().ok().filter(|n| *n > 0).ok_or_else(|| {
                                    CliError::Options(format!(
                                        "bad value for --replica-capacity: {value}"
                                    ))
                                })?;
                        }
                        _ => {
                            self.threads =
                                value.parse().ok().filter(|n| *n > 0).ok_or_else(|| {
                                    CliError::Options(format!("bad value for --threads: {value}"))
                                })?;
                        }
                    }
                }
                _ => remaining.push(arg),
            }
        }
        drop(it);
        *args = remaining;
        Ok(())
    }

    /// Checks the cluster flag combination: `--node-id` and `--front`
    /// require `--cluster`, and a clustered node is exactly one of the
    /// two.
    ///
    /// # Errors
    ///
    /// Returns [`CliError::Options`] naming the conflicting flags.
    pub fn validate_cluster(&self) -> Result<(), CliError> {
        match (&self.cluster, self.node_id, self.front) {
            (None, None, false) => Ok(()),
            (None, _, _) => {
                Err(CliError::Options("--node-id/--front require --cluster PEERS_FILE".into()))
            }
            (Some(_), Some(_), true) => {
                Err(CliError::Options("--node-id and --front are mutually exclusive".into()))
            }
            (Some(_), None, false) => {
                Err(CliError::Options("--cluster needs --node-id N or --front".into()))
            }
            (Some(_), _, _) => Ok(()),
        }
    }
}

/// Options of the `trisc status` subcommand (`--host`, `--port`,
/// `--journal`): an ops-plane client that renders a running server's
/// `statusz`/`journal` endpoints human-readably. The client itself lives
/// in the `rtserver` crate next to the daemon.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatusOptions {
    /// Server host to query.
    pub host: String,
    /// Server port to query.
    pub port: u16,
    /// How many recent flight records to render from the journal.
    pub journal: usize,
}

impl Default for StatusOptions {
    /// Loopback on the default serve port, last 10 records.
    fn default() -> Self {
        StatusOptions { host: "127.0.0.1".to_string(), port: 7227, journal: 10 }
    }
}

impl StatusOptions {
    /// Consumes recognized `--flag value` pairs from an argument list,
    /// leaving the rest untouched.
    ///
    /// # Errors
    ///
    /// Returns [`CliError::Options`] for malformed values or a flag
    /// missing its value.
    pub fn parse_from(&mut self, args: &mut Vec<String>) -> Result<(), CliError> {
        let mut remaining = Vec::with_capacity(args.len());
        let mut it = args.drain(..);
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--host" | "--port" | "--journal" => {
                    let value = it
                        .next()
                        .ok_or_else(|| CliError::Options(format!("{arg} needs a value")))?;
                    match arg.as_str() {
                        "--host" => self.host = value,
                        "--port" => {
                            self.port = value.parse().map_err(|_| {
                                CliError::Options(format!("bad value for --port: {value}"))
                            })?;
                        }
                        _ => {
                            self.journal = value.parse().map_err(|_| {
                                CliError::Options(format!("bad value for --journal: {value}"))
                            })?;
                        }
                    }
                }
                _ => remaining.push(arg),
            }
        }
        drop(it);
        *args = remaining;
        Ok(())
    }
}

/// Errors surfaced to the command-line user.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CliError {
    /// Bad command-line usage.
    Usage(String),
    /// Bad option values.
    Options(String),
    /// Assembly failed.
    Asm(String),
    /// Execution failed.
    Exec(String),
    /// Analysis failed.
    Analysis(String),
    /// Simulation failed.
    Sim(String),
    /// A referenced variant does not exist.
    UnknownVariant(String),
    /// Reading a file failed.
    Io(String),
    /// A system spec file was malformed.
    Spec(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(m) => write!(f, "usage: {m}"),
            CliError::Options(m) => write!(f, "bad options: {m}"),
            CliError::Asm(m) => write!(f, "assembly failed: {m}"),
            CliError::Exec(m) => write!(f, "execution failed: {m}"),
            CliError::Analysis(m) => write!(f, "analysis failed: {m}"),
            CliError::Sim(m) => write!(f, "simulation failed: {m}"),
            CliError::UnknownVariant(v) => write!(f, "unknown variant `{v}`"),
            CliError::Io(m) => write!(f, "io error: {m}"),
            CliError::Spec(m) => write!(f, "bad system spec: {m}"),
        }
    }
}

impl std::error::Error for CliError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let o = CacheOptions::default();
        assert_eq!(o.geometry().unwrap(), rtcache::CacheGeometry::paper_l1());
        assert_eq!(o.model().miss_penalty, 20);
    }

    #[test]
    fn parses_and_removes_flags() {
        let mut o = CacheOptions::default();
        let mut args: Vec<String> = ["file.s", "--ways", "2", "--cmiss", "40", "--keep"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        o.parse_from(&mut args).unwrap();
        assert_eq!(o.ways, 2);
        assert_eq!(o.cmiss, 40);
        assert_eq!(args, vec!["file.s".to_string(), "--keep".to_string()]);
    }

    #[test]
    fn rejects_bad_values() {
        let mut o = CacheOptions::default();
        let mut args: Vec<String> = ["--sets", "many"].iter().map(|s| s.to_string()).collect();
        assert!(matches!(o.parse_from(&mut args), Err(CliError::Options(_))));
        let mut args: Vec<String> = vec!["--sets".to_string()];
        assert!(matches!(o.parse_from(&mut args), Err(CliError::Options(_))));
    }

    #[test]
    fn invalid_geometry_is_an_options_error() {
        let o = CacheOptions { sets: 3, ways: 4, line: 16, cmiss: 20 };
        assert!(matches!(o.geometry(), Err(CliError::Options(_))));
    }

    #[test]
    fn serve_options_parse_and_validate() {
        let mut o = ServeOptions::default();
        assert!(o.threads > 0);
        let mut args: Vec<String> =
            ["--port", "0", "--threads", "3", "spare"].iter().map(|s| s.to_string()).collect();
        o.parse_from(&mut args).unwrap();
        assert_eq!(o.port, 0);
        assert_eq!(o.threads, 3);
        assert_eq!(args, vec!["spare".to_string()]);
        assert_eq!(o.trace_out, None);
        let mut args: Vec<String> =
            ["--trace-out", "t.json"].iter().map(|s| s.to_string()).collect();
        o.parse_from(&mut args).unwrap();
        assert_eq!(o.trace_out.as_deref(), Some("t.json"));
        let mut bad: Vec<String> = ["--threads", "0"].iter().map(|s| s.to_string()).collect();
        assert!(matches!(ServeOptions::default().parse_from(&mut bad), Err(CliError::Options(_))));
        let mut bad: Vec<String> = vec!["--port".to_string(), "high".to_string()];
        assert!(matches!(ServeOptions::default().parse_from(&mut bad), Err(CliError::Options(_))));
    }

    #[test]
    fn serve_options_parse_flight_flags() {
        let mut o = ServeOptions::default();
        assert_eq!(o.slow_ms, None);
        assert_eq!(o.flight_capacity, 512);
        let mut args: Vec<String> = ["--slow-ms", "250", "--flight-capacity", "64", "rest"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        o.parse_from(&mut args).unwrap();
        assert_eq!(o.slow_ms, Some(250));
        assert_eq!(o.flight_capacity, 64);
        assert_eq!(args, vec!["rest".to_string()]);
        let mut bad: Vec<String> = ["--slow-ms", "soon"].iter().map(|s| s.to_string()).collect();
        assert!(matches!(ServeOptions::default().parse_from(&mut bad), Err(CliError::Options(_))));
        let mut bad: Vec<String> =
            ["--flight-capacity", "0"].iter().map(|s| s.to_string()).collect();
        assert!(matches!(ServeOptions::default().parse_from(&mut bad), Err(CliError::Options(_))));
    }

    #[test]
    fn serve_options_parse_reactor_flags() {
        let mut o = ServeOptions::default();
        assert_eq!(o.event_threads, 2);
        assert_eq!(o.max_inflight, 256);
        assert_eq!(o.deadline_ms, None);
        assert_eq!(o.idle_timeout_ms, None);
        assert_eq!(o.poller, "auto");
        let mut args: Vec<String> = [
            "--event-threads",
            "4",
            "--max-inflight",
            "0",
            "--deadline-ms",
            "250",
            "--idle-timeout-ms",
            "30000",
            "--poller",
            "poll",
            "rest",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        o.parse_from(&mut args).unwrap();
        assert_eq!(o.event_threads, 4);
        assert_eq!(o.max_inflight, 0, "a zero cap sheds everything (tests rely on it)");
        assert_eq!(o.deadline_ms, Some(250));
        assert_eq!(o.idle_timeout_ms, Some(30_000));
        assert_eq!(o.poller, "poll");
        assert_eq!(args, vec!["rest".to_string()]);
        for bad in [
            ["--event-threads", "0"],
            ["--idle-timeout-ms", "0"],
            ["--poller", "kqueue"],
            ["--max-inflight", "lots"],
            ["--deadline-ms", "soon"],
        ] {
            let mut args: Vec<String> = bad.iter().map(|s| s.to_string()).collect();
            assert!(
                matches!(ServeOptions::default().parse_from(&mut args), Err(CliError::Options(_))),
                "{bad:?} should be rejected"
            );
        }
    }

    #[test]
    fn serve_options_parse_cluster_flags() {
        let mut o = ServeOptions::default();
        assert_eq!((o.cluster.as_deref(), o.node_id, o.front), (None, None, false));
        assert_eq!((o.peer_deadline_ms, o.replica_capacity), (2000, 256));
        o.validate_cluster().unwrap();
        let mut args: Vec<String> = [
            "--cluster",
            "peers.txt",
            "--node-id",
            "1",
            "--peer-deadline-ms",
            "500",
            "--replica-capacity",
            "32",
            "rest",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        o.parse_from(&mut args).unwrap();
        assert_eq!(o.cluster.as_deref(), Some("peers.txt"));
        assert_eq!(o.node_id, Some(1));
        assert_eq!(o.peer_deadline_ms, 500);
        assert_eq!(o.replica_capacity, 32);
        assert_eq!(args, vec!["rest".to_string()]);
        o.validate_cluster().unwrap();

        let mut front = ServeOptions::default();
        let mut args: Vec<String> =
            ["--cluster", "peers.txt", "--front"].iter().map(|s| s.to_string()).collect();
        front.parse_from(&mut args).unwrap();
        assert!(front.front && args.is_empty());
        front.validate_cluster().unwrap();

        for bad in [["--node-id", "one"], ["--peer-deadline-ms", "0"], ["--replica-capacity", "0"]]
        {
            let mut args: Vec<String> = bad.iter().map(|s| s.to_string()).collect();
            assert!(
                matches!(ServeOptions::default().parse_from(&mut args), Err(CliError::Options(_))),
                "{bad:?} should be rejected"
            );
        }
        // Flag-combination validation.
        let combos: [(&[&str], &str); 3] = [
            (&["--cluster", "p.txt"], "--node-id N or --front"),
            (&["--cluster", "p.txt", "--node-id", "0", "--front"], "mutually exclusive"),
            (&["--front"], "require --cluster"),
        ];
        for (flags, needle) in combos {
            let mut o = ServeOptions::default();
            let mut args: Vec<String> = flags.iter().map(|s| s.to_string()).collect();
            o.parse_from(&mut args).unwrap();
            let err = o.validate_cluster().unwrap_err();
            assert!(err.to_string().contains(needle), "{flags:?}: {err}");
        }
    }

    #[test]
    fn status_options_parse() {
        let mut o = StatusOptions::default();
        assert_eq!((o.host.as_str(), o.port, o.journal), ("127.0.0.1", 7227, 10));
        let mut args: Vec<String> = ["--port", "9000", "--journal", "25", "--host", "::1"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        o.parse_from(&mut args).unwrap();
        assert_eq!((o.host.as_str(), o.port, o.journal), ("::1", 9000, 25));
        assert!(args.is_empty());
        let mut bad: Vec<String> = ["--journal", "many"].iter().map(|s| s.to_string()).collect();
        assert!(matches!(StatusOptions::default().parse_from(&mut bad), Err(CliError::Options(_))));
    }

    #[test]
    fn error_display() {
        assert!(CliError::Usage("trisc asm FILE".into()).to_string().starts_with("usage"));
        assert!(CliError::Spec("line 3".into()).to_string().contains("line 3"));
    }
}
