//! Argument dispatch for the `trisc` binary, kept in the library so it is
//! unit-testable without spawning processes.

use std::path::Path;

use crate::options::{CacheOptions, CliError, ServeOptions, StatusOptions};
use crate::spec::SystemSpec;
use crate::{
    cmd_asm, cmd_crpd, cmd_disasm, cmd_footprint, cmd_run, cmd_sim, cmd_wcet, cmd_wcrt,
    cmd_wcrt_explain,
};

/// The usage line printed on bad invocations and `--help`.
pub const USAGE: &str =
    "trisc <asm|disasm|run|wcet|footprint|crpd|wcrt|sim|explore|serve|status> ... \
     (wcrt/crpd/explore take --trace-out TRACE.json; wcrt takes --explain)";

/// A fully parsed `trisc` invocation.
///
/// Most subcommands run to completion inside [`parse`] and yield their
/// output text; `serve` and `explore` cannot (the daemon and the sweep
/// engine live in crates that depend on this one), so they are returned
/// as data for the binary to act on.
#[derive(Debug)]
pub enum Invocation {
    /// A one-shot command that already ran; print this and exit.
    Output(String),
    /// `trisc serve`: start the analysis daemon with these options.
    Serve(ServeOptions),
    /// `trisc status`: query a running daemon's statusz/journal endpoints
    /// and render them for a terminal.
    Status(StatusOptions),
    /// `trisc explore GRID`: run a design-space sweep over the grid file.
    Explore {
        /// Path to the grid file declaring the swept axes.
        grid: String,
        /// Chrome-trace output path from `--trace-out`, if given.
        trace_out: Option<String>,
    },
}

/// Parses one `trisc` invocation (`args` excludes the program name),
/// running one-shot commands eagerly.
///
/// # Errors
///
/// Returns a [`CliError`] for bad usage or any underlying failure.
pub fn parse(mut args: Vec<String>) -> Result<Invocation, CliError> {
    if args.first().map(String::as_str) == Some("serve") {
        args.remove(0);
        let mut opts = ServeOptions::default();
        opts.parse_from(&mut args)?;
        if let Some(extra) = args.first() {
            return Err(CliError::Usage(format!(
                "unexpected argument `{extra}`; trisc serve [--host HOST] [--port PORT] [--threads N] \
                 [--event-threads N] [--max-inflight N] [--deadline-ms MS] [--idle-timeout-ms MS] \
                 [--poller auto|epoll|poll] [--trace-out TRACE.json] \
                 [--cluster PEERS_FILE (--node-id N | --front)] [--peer-deadline-ms MS] \
                 [--replica-capacity N]"
            )));
        }
        opts.validate_cluster()?;
        return Ok(Invocation::Serve(opts));
    }
    if args.first().map(String::as_str) == Some("status") {
        args.remove(0);
        let mut opts = StatusOptions::default();
        opts.parse_from(&mut args)?;
        if let Some(extra) = args.first() {
            return Err(CliError::Usage(format!(
                "unexpected argument `{extra}`; trisc status [--host HOST] [--port PORT] [--journal N]"
            )));
        }
        return Ok(Invocation::Status(opts));
    }
    if args.first().map(String::as_str) == Some("explore") {
        args.remove(0);
        let trace_out = take_flag_value(&mut args, "--trace-out")?;
        let [grid] = args.as_slice() else {
            return Err(CliError::Usage("trisc explore GRID [--trace-out TRACE.json]".into()));
        };
        return Ok(Invocation::Explore { grid: grid.clone(), trace_out });
    }
    dispatch(args).map(Invocation::Output)
}

fn read(path: &str) -> Result<(String, String), CliError> {
    let text = std::fs::read_to_string(path).map_err(|e| CliError::Io(format!("{path}: {e}")))?;
    let name =
        Path::new(path).file_stem().and_then(|s| s.to_str()).unwrap_or("program").to_string();
    Ok((name, text))
}

/// Extracts `--flag VALUE` from `args`, removing both tokens.
///
/// # Errors
///
/// Returns [`CliError::Usage`] if the flag is present without a value.
pub fn take_flag_value(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, CliError> {
    if let Some(pos) = args.iter().position(|a| a == flag) {
        if pos + 1 >= args.len() {
            return Err(CliError::Usage(format!("{flag} needs a value")));
        }
        let value = args.remove(pos + 1);
        args.remove(pos);
        Ok(Some(value))
    } else {
        Ok(None)
    }
}

/// Extracts a valueless `--flag` from `args`, returning whether it was
/// present (every occurrence is removed).
pub fn take_bool_flag(args: &mut Vec<String>, flag: &str) -> bool {
    let before = args.len();
    args.retain(|a| a != flag);
    args.len() != before
}

/// Runs `f` with an `rtobs` recording session installed when `trace_out`
/// names a path, writing the Chrome trace there afterwards. With no path
/// the command runs bare: collection stays disabled and costs nothing.
fn with_recorder(
    trace_out: Option<&str>,
    f: impl FnOnce() -> Result<String, CliError>,
) -> Result<String, CliError> {
    let Some(path) = trace_out else { return f() };
    let session = rtobs::begin();
    let out = f()?;
    session
        .recorder()
        .write_chrome_trace(Path::new(path))
        .map_err(|e| CliError::Io(format!("{path}: {e}")))?;
    Ok(out)
}

/// Runs one `trisc` invocation (`args` excludes the program name) and
/// returns the text to print.
///
/// # Errors
///
/// Returns a [`CliError`] for bad usage or any underlying failure; the
/// binary prints it to stderr and exits non-zero.
pub fn dispatch(mut args: Vec<String>) -> Result<String, CliError> {
    if args.iter().any(|a| a == "--help" || a == "-h") {
        return Ok(format!("{USAGE}\n"));
    }
    let Some(command) = args.first().cloned() else {
        return Err(CliError::Usage(USAGE.into()));
    };
    args.remove(0);
    let mut cache = CacheOptions::default();
    cache.parse_from(&mut args)?;
    match command.as_str() {
        "asm" | "disasm" => {
            let [file] = args.as_slice() else {
                return Err(CliError::Usage(format!("trisc {command} FILE.s")));
            };
            let (name, text) = read(file)?;
            if command == "asm" {
                cmd_asm(&name, &text)
            } else {
                cmd_disasm(&name, &text)
            }
        }
        "run" => {
            let variant = take_flag_value(&mut args, "--variant")?;
            let [file] = args.as_slice() else {
                return Err(CliError::Usage("trisc run FILE.s [--variant NAME]".into()));
            };
            let (name, text) = read(file)?;
            cmd_run(&name, &text, variant.as_deref())
        }
        "wcet" | "footprint" => {
            let [file] = args.as_slice() else {
                return Err(CliError::Usage(format!("trisc {command} FILE.s [cache options]")));
            };
            let (name, text) = read(file)?;
            if command == "wcet" {
                cmd_wcet(&name, &text, &cache)
            } else {
                cmd_footprint(&name, &text, &cache)
            }
        }
        "crpd" => {
            let trace_out = take_flag_value(&mut args, "--trace-out")?;
            let [low, high] = args.as_slice() else {
                return Err(CliError::Usage(
                    "trisc crpd LOW.s HIGH.s [cache options] [--trace-out TRACE.json]".into(),
                ));
            };
            let (low_name, low_text) = read(low)?;
            let (high_name, high_text) = read(high)?;
            with_recorder(trace_out.as_deref(), || {
                cmd_crpd((&low_name, &low_text), (&high_name, &high_text), &cache)
            })
        }
        "wcrt" => {
            let trace_out = take_flag_value(&mut args, "--trace-out")?;
            let explain = take_bool_flag(&mut args, "--explain");
            let [file] = args.as_slice() else {
                return Err(CliError::Usage(
                    "trisc wcrt SYSTEM.spec [--explain] [--trace-out TRACE.json]".into(),
                ));
            };
            let spec = SystemSpec::load(Path::new(file))?;
            with_recorder(trace_out.as_deref(), || {
                if explain {
                    cmd_wcrt_explain(&spec, &spec.analyzed_tasks()?)
                } else {
                    cmd_wcrt(&spec)
                }
            })
        }
        "sim" => {
            let horizon = take_flag_value(&mut args, "--horizon")?
                .map(|v| {
                    v.parse::<u64>().map_err(|_| CliError::Usage(format!("bad horizon `{v}`")))
                })
                .transpose()?;
            let [file] = args.as_slice() else {
                return Err(CliError::Usage("trisc sim SYSTEM.spec [--horizon CYCLES]".into()));
            };
            cmd_sim(&SystemSpec::load(Path::new(file))?, horizon)
        }
        "serve" => {
            Err(CliError::Usage("serve is long-running; use `parse` and the rtserver crate".into()))
        }
        "status" => Err(CliError::Usage(
            "status talks to a live daemon; use `parse` and the rtserver crate".into(),
        )),
        "explore" => Err(CliError::Usage(
            "explore runs in the rtexplore crate; use `parse` and the trisc binary".into(),
        )),
        other => Err(CliError::Usage(format!("unknown command `{other}`; {USAGE}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    fn temp_file(name: &str, contents: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("trisc-dispatch-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        std::fs::write(&path, contents).unwrap();
        path
    }

    #[test]
    fn help_and_empty_usage() {
        assert!(dispatch(argv(&["--help"])).unwrap().contains("trisc"));
        assert!(matches!(dispatch(vec![]), Err(CliError::Usage(_))));
        assert!(matches!(dispatch(argv(&["frobnicate"])), Err(CliError::Usage(_))));
    }

    #[test]
    fn asm_command_end_to_end() {
        let f = temp_file("ok.s", "start: li r1, 7\nhalt\n");
        let out = dispatch(argv(&["asm", f.to_str().unwrap()])).unwrap();
        assert!(out.contains("program `ok`"));
    }

    #[test]
    fn wcet_respects_cache_flags() {
        let f = temp_file("w.s", "start: li r1, 7\nhalt\n");
        let out = dispatch(argv(&["wcet", f.to_str().unwrap(), "--cmiss", "40", "--sets", "64"]))
            .unwrap();
        assert!(out.contains("Cmiss=40"), "{out}");
        assert!(out.contains("64 sets"), "{out}");
    }

    #[test]
    fn missing_operands_are_usage_errors() {
        for cmd in ["asm", "disasm", "run", "wcet", "footprint", "wcrt", "sim"] {
            assert!(matches!(dispatch(argv(&[cmd])), Err(CliError::Usage(_))), "{cmd}");
        }
        assert!(matches!(dispatch(argv(&["crpd", "one.s"])), Err(CliError::Usage(_))));
    }

    #[test]
    fn take_flag_value_extracts_and_errors() {
        let mut args = argv(&["a", "--variant", "sobel", "b"]);
        assert_eq!(take_flag_value(&mut args, "--variant").unwrap().as_deref(), Some("sobel"));
        assert_eq!(args, argv(&["a", "b"]));
        assert_eq!(take_flag_value(&mut args, "--variant").unwrap(), None);
        let mut dangling = argv(&["--horizon"]);
        assert!(matches!(take_flag_value(&mut dangling, "--horizon"), Err(CliError::Usage(_))));
    }

    #[test]
    fn parse_runs_one_shot_commands() {
        let f = temp_file("p.s", "start: li r1, 7\nhalt\n");
        match parse(argv(&["asm", f.to_str().unwrap()])).unwrap() {
            Invocation::Output(out) => assert!(out.contains("program `p`")),
            other => panic!("expected Output, got {other:?}"),
        }
    }

    #[test]
    fn take_bool_flag_removes_every_occurrence() {
        let mut args = argv(&["sys.spec", "--explain", "--explain"]);
        assert!(take_bool_flag(&mut args, "--explain"));
        assert!(!take_bool_flag(&mut args, "--explain"));
        assert_eq!(args, argv(&["sys.spec"]));
    }

    #[test]
    fn wcrt_explain_and_trace_out_end_to_end() {
        // The acceptance path of the observability layer: one command
        // produces both the breakdown report and a Chrome trace covering
        // every pipeline stage.
        temp_file(
            "hi.s",
            ".data 0x100000\nbuf: .word 1,2,3\n.text 0x1000\nstart: li r1, buf\nld r2, 0(r1)\nld r2, 0(r1)\nhalt\n",
        );
        temp_file(
            "lo.s",
            ".data 0x100400\nbuf: .word 7\n.text 0x2000\nstart: li r1, buf\nld r2, 0(r1)\nhalt\n",
        );
        let spec = temp_file(
            "explain.spec",
            "cache 64 2 16\ncmiss 20\nccs 50\ntask hi hi.s 5000 1\ntask lo lo.s 50000 2\n",
        );
        let trace = spec.with_file_name("explain-trace.json");
        let out = dispatch(argv(&[
            "wcrt",
            spec.to_str().unwrap(),
            "--explain",
            "--trace-out",
            trace.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("WCRT breakdown"), "{out}");
        assert!(out.contains("App. 4: R="), "{out}");
        let json = std::fs::read_to_string(&trace).unwrap();
        assert!(json.contains("\"traceEvents\":["), "{json}");
        for stage in ["assemble", "trace", "ciip", "mumbs", "crpd", "wcrt"] {
            assert!(json.contains(&format!("\"name\":\"{stage}\"")), "missing stage {stage}");
        }
        std::fs::remove_file(&trace).ok();
    }

    #[test]
    fn parse_recognizes_serve() {
        match parse(argv(&["serve", "--port", "0", "--threads", "2"])).unwrap() {
            Invocation::Serve(opts) => {
                assert_eq!(opts.port, 0);
                assert_eq!(opts.threads, 2);
                assert_eq!(opts.host, "127.0.0.1");
                assert_eq!(opts.trace_out, None);
            }
            other => panic!("expected Serve, got {other:?}"),
        }
        match parse(argv(&["serve", "--port", "0", "--cluster", "peers.txt", "--front"])).unwrap() {
            Invocation::Serve(opts) => {
                assert_eq!(opts.cluster.as_deref(), Some("peers.txt"));
                assert!(opts.front);
            }
            other => panic!("expected Serve, got {other:?}"),
        }
        // Cluster flag combinations are validated at parse time.
        assert!(matches!(
            parse(argv(&["serve", "--cluster", "peers.txt"])),
            Err(CliError::Options(_))
        ));
        assert!(matches!(parse(argv(&["serve", "leftover"])), Err(CliError::Usage(_))));
        // `dispatch` itself points serve users at the daemon crate.
        assert!(matches!(dispatch(argv(&["serve"])), Err(CliError::Usage(_))));
    }

    #[test]
    fn parse_recognizes_status() {
        match parse(argv(&["status", "--port", "9000", "--journal", "3"])).unwrap() {
            Invocation::Status(opts) => {
                assert_eq!(opts.host, "127.0.0.1");
                assert_eq!(opts.port, 9000);
                assert_eq!(opts.journal, 3);
            }
            other => panic!("expected Status, got {other:?}"),
        }
        assert!(matches!(parse(argv(&["status", "leftover"])), Err(CliError::Usage(_))));
        // `dispatch` itself points status users at the daemon crate.
        assert!(matches!(dispatch(argv(&["status"])), Err(CliError::Usage(_))));
    }

    #[test]
    fn parse_recognizes_explore() {
        match parse(argv(&["explore", "sweep.grid"])).unwrap() {
            Invocation::Explore { grid, trace_out } => {
                assert_eq!(grid, "sweep.grid");
                assert_eq!(trace_out, None);
            }
            other => panic!("expected Explore, got {other:?}"),
        }
        match parse(argv(&["explore", "--trace-out", "t.json", "sweep.grid"])).unwrap() {
            Invocation::Explore { grid, trace_out } => {
                assert_eq!(grid, "sweep.grid");
                assert_eq!(trace_out.as_deref(), Some("t.json"));
            }
            other => panic!("expected Explore, got {other:?}"),
        }
        // Missing or extra operands are usage errors.
        assert!(matches!(parse(argv(&["explore"])), Err(CliError::Usage(_))));
        assert!(matches!(parse(argv(&["explore", "a.grid", "b.grid"])), Err(CliError::Usage(_))));
        // `dispatch` itself points explore users at the sweep crate.
        assert!(matches!(dispatch(argv(&["explore"])), Err(CliError::Usage(_))));
    }

    #[test]
    fn bad_horizon_is_usage_error() {
        let f = temp_file("sys.spec", "task a a.s 1 1\n");
        assert!(matches!(
            dispatch(argv(&["sim", f.to_str().unwrap(), "--horizon", "soon"])),
            Err(CliError::Usage(_))
        ));
    }
}
