//! A small vendored parallel runtime for the analysis pipeline.
//!
//! The workspace builds fully offline, so rayon is not an option; this
//! crate provides the minimal subset the WCRT pipeline needs — a
//! fixed-size thread pool with [`Pool::par_map`], [`Pool::par_map_range`],
//! [`Pool::scope`] and [`Pool::join`] — under one hard guarantee:
//!
//! **results are byte-identical regardless of the thread count.**
//!
//! Determinism comes from the execution model, not from luck:
//!
//! - every `par_map` result is written into a slot addressed by its input
//!   index, and the output `Vec` is assembled in index order — which
//!   thread computed an element never shows;
//! - reductions over the results are the caller's (sequential, in index
//!   order); the runtime never merges anything itself;
//! - work distribution is self-scheduling: threads claim the next unclaimed
//!   index from an atomic cursor, so scheduling affects only timing.
//!
//! The pool has `threads - 1` background workers and the **caller always
//! participates**: a `Pool::new(1)` pool spawns no threads at all and runs
//! every closure inline on the calling thread. A thread that waits for a
//! batch first claims and runs items of that batch until the cursor is
//! exhausted, so nested parallelism (an item of one batch starting a
//! sub-batch) cannot deadlock: a thread only ever blocks on work that
//! other threads are actively executing.
//!
//! Blocking callers and pool sizing are process-level concerns: a global
//! pool (sized by the `RTPAR_THREADS` environment variable, or the
//! available parallelism capped at 8) serves the free functions
//! [`par_map`], [`par_map_range`], [`scope`] and [`join`]; a specific pool
//! can be made current for a closure with [`Pool::install`], and the
//! global pool can be resized with [`configure_global`] (the `serve
//! --threads` knob).

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

use std::any::Any;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt;
use std::num::NonZeroUsize;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Environment variable that sizes the global pool (a positive integer;
/// anything else is ignored).
pub const THREADS_ENV: &str = "RTPAR_THREADS";

// ---------------------------------------------------------------------------
// Batch: one par_map call in flight.
// ---------------------------------------------------------------------------

/// Completion state of a batch, updated under its mutex.
struct Completion {
    done: usize,
    panic: Option<Box<dyn Any + Send>>,
}

/// A type-erased in-flight `par_map` call. The owner keeps the typed data
/// (`BatchData`) on its stack; helpers reach it through the raw pointer.
///
/// Lifecycle protocol (this is what makes the raw pointer sound):
///
/// 1. The owning call constructs the batch, publishes up to
///    `workers` helper tokens (`Arc<Batch>` clones) on the pool queue,
///    then itself claims indices from `next` until the cursor passes
///    `total`.
/// 2. Having exhausted the cursor, the owner blocks until `done == total`.
///    Every claimed index is therefore finished before the owner's stack
///    frame (and `data`) can be invalidated.
/// 3. A helper popping a token after that only touches `next`: it sees a
///    cursor at or past `total` and returns without dereferencing `data`.
///    Stale queue tokens are inert.
struct Batch {
    /// Claim cursor: `fetch_add` hands out item indices exactly once.
    next: AtomicUsize,
    total: usize,
    /// Points at the owning call's stack-resident `BatchData`.
    data: *const (),
    /// Monomorphized executor for one item of `data`.
    run_one: unsafe fn(*const (), usize),
    completion: Mutex<Completion>,
    finished: Condvar,
    /// The submitting thread's flight frame, re-installed on whichever
    /// thread executes the batch so per-request attribution survives
    /// work stealing (`rtobs::flight`).
    flight: Option<Arc<rtobs::flight::ActiveFlight>>,
}

// SAFETY: `data` is only dereferenced through `run_one` for indices
// claimed from `next`, and the constructing call (`Shared::par_map_range`)
// guarantees the pointee outlives all such claims (see the lifecycle
// protocol above) and requires `F: Sync` / `R: Send` for the pointee's
// contents.
unsafe impl Send for Batch {}
// SAFETY: as above; all interior mutability is via atomics and mutexes.
unsafe impl Sync for Batch {}

impl Batch {
    /// Claims and runs items until the cursor is exhausted. Panics from
    /// items are captured into `completion` so `done` always reaches
    /// `total`; the batch owner rethrows after the wait. Every claimed
    /// item is tallied into `claimed` *before* its `done` increment, so
    /// once the owner observes a finished batch the inline/stolen split
    /// is fully accounted (a batched add on loop exit would race the
    /// owner's `stats()` read).
    fn run_to_exhaustion(&self, claimed: &AtomicU64) {
        // Attribute everything this thread claims to the submitting
        // request's flight frame (no-op when the batch carries none).
        let _flight = rtobs::flight::adopt(self.flight.clone());
        loop {
            let index = self.next.fetch_add(1, Ordering::Relaxed);
            if index >= self.total {
                break;
            }
            // SAFETY: `index < total`, so the owner is still inside
            // `par_map_range` (it cannot return before `done == total`)
            // and `data` is alive.
            let outcome =
                catch_unwind(AssertUnwindSafe(|| unsafe { (self.run_one)(self.data, index) }));
            claimed.fetch_add(1, Ordering::Relaxed);
            let mut completion = self.completion.lock().expect("batch completion lock");
            if let Err(payload) = outcome {
                completion.panic.get_or_insert(payload);
            }
            completion.done += 1;
            if completion.done == self.total {
                self.finished.notify_all();
            }
        }
    }
}

/// The typed side of a batch, owned by the `par_map_range` stack frame.
struct BatchData<'call, R, F> {
    f: &'call F,
    /// One slot per index; written by whichever thread claims the index,
    /// drained in index order by the owner.
    slots: Vec<Mutex<Option<R>>>,
}

/// Runs item `index`: calls the closure and parks the result in its slot.
///
/// # Safety
///
/// `data` must point at a live `BatchData<R, F>` and `index` must be a
/// uniquely claimed in-range index (both guaranteed by the `Batch`
/// lifecycle protocol).
unsafe fn run_one_erased<R, F: Fn(usize) -> R>(data: *const (), index: usize) {
    // SAFETY: the caller upholds validity of `data` per this function's
    // contract; `F: Sync` makes the shared borrow across threads sound.
    let data = unsafe { &*data.cast::<BatchData<'_, R, F>>() };
    let value = (data.f)(index);
    *data.slots[index].lock().expect("batch slot lock") = Some(value);
}

// ---------------------------------------------------------------------------
// Shared pool state and workers.
// ---------------------------------------------------------------------------

struct Queue {
    jobs: VecDeque<Arc<Batch>>,
    shutdown: bool,
}

struct Shared {
    /// Total parallelism: background workers + the participating caller.
    threads: usize,
    queue: Mutex<Queue>,
    work_ready: Condvar,
    /// Lifetime activity gauges, exposed via [`Pool::stats`]. Purely
    /// observational: nothing in the scheduling path reads them.
    batches: AtomicU64,
    items_inline: AtomicU64,
    items_stolen: AtomicU64,
}

impl Shared {
    fn worker_count(&self) -> usize {
        self.threads - 1
    }

    /// The deterministic fan-out primitive everything else builds on.
    fn par_map_range<R, F>(self: &Arc<Self>, len: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        if len == 0 {
            return Vec::new();
        }
        self.batches.fetch_add(1, Ordering::Relaxed);
        let data = BatchData { f: &f, slots: (0..len).map(|_| Mutex::new(None)).collect() };
        let batch = Arc::new(Batch {
            next: AtomicUsize::new(0),
            total: len,
            data: (&data as *const BatchData<'_, R, F>).cast(),
            run_one: run_one_erased::<R, F>,
            completion: Mutex::new(Completion { done: 0, panic: None }),
            finished: Condvar::new(),
            flight: rtobs::flight::context(),
        });
        // The caller takes one item itself, so at most `len - 1` helpers
        // can ever be useful.
        let helpers = self.worker_count().min(len - 1);
        if helpers > 0 {
            let mut queue = self.queue.lock().expect("pool queue lock");
            for _ in 0..helpers {
                queue.jobs.push_back(Arc::clone(&batch));
            }
            drop(queue);
            self.work_ready.notify_all();
        }
        // Caller participation: exhaust the cursor, then wait for claimed
        // stragglers. After this, no thread will dereference `data` again.
        batch.run_to_exhaustion(&self.items_inline);
        let mut completion = batch.completion.lock().expect("batch completion lock");
        while completion.done < len {
            completion = batch.finished.wait(completion).expect("batch completion lock");
        }
        let panic = completion.panic.take();
        drop(completion);
        if let Some(payload) = panic {
            resume_unwind(payload);
        }
        data.slots
            .into_iter()
            .map(|slot| {
                slot.into_inner().expect("batch slot lock").expect("every claimed index completed")
            })
            .collect()
    }

    fn scope<'scope, R>(self: &Arc<Self>, f: impl FnOnce(&mut Scope<'scope>) -> R) -> R {
        let mut scope = Scope { jobs: Vec::new() };
        let result = f(&mut scope);
        let jobs: Vec<Mutex<Option<ScopeJob<'scope>>>> =
            scope.jobs.into_iter().map(|job| Mutex::new(Some(job))).collect();
        self.par_map_range(jobs.len(), |index| {
            let job = jobs[index].lock().expect("scope job lock").take();
            job.expect("each scope job is claimed exactly once")();
        });
        result
    }

    fn join<RA, RB, A, B>(self: &Arc<Self>, a: A, b: B) -> (RA, RB)
    where
        RA: Send,
        RB: Send,
        A: FnOnce() -> RA + Send,
        B: FnOnce() -> RB + Send,
    {
        enum Either<X, Y> {
            A(X),
            B(Y),
        }
        let a = Mutex::new(Some(a));
        let b = Mutex::new(Some(b));
        let mut results = self
            .par_map_range(2, |index| {
                if index == 0 {
                    let a = a.lock().expect("join lock").take().expect("a runs once");
                    Either::A(a())
                } else {
                    let b = b.lock().expect("join lock").take().expect("b runs once");
                    Either::B(b())
                }
            })
            .into_iter();
        match (results.next(), results.next()) {
            (Some(Either::A(ra)), Some(Either::B(rb))) => (ra, rb),
            _ => unreachable!("par_map_range(2) yields index-ordered results"),
        }
    }
}

fn worker_loop(shared: Arc<Shared>) {
    // Nested free-function calls from inside batch items must target this
    // worker's own pool, not the global one.
    CURRENT.with(|current| current.borrow_mut().push(Arc::clone(&shared)));
    loop {
        let batch = {
            let mut queue = shared.queue.lock().expect("pool queue lock");
            loop {
                if let Some(batch) = queue.jobs.pop_front() {
                    break batch;
                }
                if queue.shutdown {
                    return;
                }
                queue = shared.work_ready.wait(queue).expect("pool queue lock");
            }
        };
        batch.run_to_exhaustion(&shared.items_stolen);
    }
}

// ---------------------------------------------------------------------------
// Pool handle.
// ---------------------------------------------------------------------------

struct Inner {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl Drop for Inner {
    fn drop(&mut self) {
        {
            let mut queue = self.shared.queue.lock().expect("pool queue lock");
            queue.shutdown = true;
        }
        self.shared.work_ready.notify_all();
        let current = std::thread::current().id();
        for handle in self.workers.drain(..) {
            // Never join the current thread: if a batch item holds the
            // last clone of its own pool, detaching beats deadlocking.
            if handle.thread().id() != current {
                let _ = handle.join();
            }
        }
    }
}

/// A fixed-size analysis pool. Cloning is cheap and shares the pool; the
/// workers shut down when the last clone is dropped.
#[derive(Clone)]
pub struct Pool {
    inner: Arc<Inner>,
}

impl fmt::Debug for Pool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Pool")
            .field("threads", &self.threads())
            .field("background_workers", &self.background_workers())
            .finish()
    }
}

impl Pool {
    /// Creates a pool with a total parallelism of `threads`: the caller of
    /// each operation plus `threads - 1` background workers. `Pool::new(1)`
    /// spawns no threads and runs everything inline on the caller.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn new(threads: usize) -> Pool {
        assert!(threads >= 1, "a pool needs at least the calling thread");
        let shared = Arc::new(Shared {
            threads,
            queue: Mutex::new(Queue { jobs: VecDeque::new(), shutdown: false }),
            work_ready: Condvar::new(),
            batches: AtomicU64::new(0),
            items_inline: AtomicU64::new(0),
            items_stolen: AtomicU64::new(0),
        });
        let workers = (0..threads - 1)
            .map(|index| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("rtpar-worker-{index}"))
                    .spawn(move || worker_loop(shared))
                    .expect("spawn rtpar worker")
            })
            .collect();
        Pool { inner: Arc::new(Inner { shared, workers }) }
    }

    /// Total parallelism (background workers + the participating caller).
    pub fn threads(&self) -> usize {
        self.inner.shared.threads
    }

    /// Number of background worker threads actually spawned
    /// (`threads() - 1`; zero for a single-threaded pool).
    pub fn background_workers(&self) -> usize {
        self.inner.workers.len()
    }

    /// Maps `f` over `0..len` on this pool; results are returned in index
    /// order regardless of which thread computed them.
    pub fn par_map_range<R, F>(&self, len: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        self.inner.shared.par_map_range(len, f)
    }

    /// Maps `f` over a slice on this pool; results are in input order.
    pub fn par_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        self.inner.shared.par_map_range(items.len(), |index| f(&items[index]))
    }

    /// Collects jobs spawned by `f` onto a [`Scope`], then runs them all
    /// in parallel (jobs may borrow from the enclosing frame) and returns
    /// once every job finished. Jobs are collected first and executed
    /// after `f` returns; a job that needs further parallelism starts its
    /// own nested `scope`/`par_map` rather than spawning siblings.
    pub fn scope<'scope, R>(&self, f: impl FnOnce(&mut Scope<'scope>) -> R) -> R {
        self.inner.shared.scope(f)
    }

    /// Runs `a` and `b`, potentially in parallel, and returns both results
    /// as `(a(), b())`.
    pub fn join<RA, RB, A, B>(&self, a: A, b: B) -> (RA, RB)
    where
        RA: Send,
        RB: Send,
        A: FnOnce() -> RA + Send,
        B: FnOnce() -> RB + Send,
    {
        self.inner.shared.join(a, b)
    }

    /// A point-in-time snapshot of the pool's activity gauges.
    pub fn stats(&self) -> PoolStats {
        let shared = &self.inner.shared;
        let queue_depth = shared.queue.lock().expect("pool queue lock").jobs.len();
        PoolStats {
            threads: shared.threads,
            background_workers: self.background_workers(),
            batches: shared.batches.load(Ordering::Relaxed),
            items_inline: shared.items_inline.load(Ordering::Relaxed),
            items_stolen: shared.items_stolen.load(Ordering::Relaxed),
            queue_depth,
        }
    }

    /// Makes this pool the current pool for the duration of `f`: the free
    /// functions ([`par_map`], [`join`], …) called from `f` — directly or
    /// from nested batch items on this thread — run here instead of the
    /// global pool.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        CURRENT.with(|current| current.borrow_mut().push(Arc::clone(&self.inner.shared)));
        let _guard = PopCurrent;
        f()
    }
}

/// Lifetime activity counters of a [`Pool`], snapshotted by
/// [`Pool::stats`]. Counters are monotone over the pool's life; the
/// queue depth is instantaneous. Exposed so a metrics endpoint can
/// derive throughput and how much work background workers actually
/// stole from callers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Total parallelism (background workers + the participating caller).
    pub threads: usize,
    /// Background worker threads spawned (`threads - 1`).
    pub background_workers: usize,
    /// Fan-out batches executed (`par_map`/`par_map_range`/`scope`/`join`).
    pub batches: u64,
    /// Work items run inline by the thread that submitted the batch.
    pub items_inline: u64,
    /// Work items claimed ("stolen") by background workers.
    pub items_stolen: u64,
    /// Batch tokens currently waiting in the queue.
    pub queue_depth: usize,
}

impl PoolStats {
    /// Fraction of all executed items claimed by background workers, in
    /// `[0, 1]`; zero before any work ran. A single-threaded pool always
    /// reports zero; a perfectly drained `n`-thread pool approaches
    /// `(n-1)/n`.
    pub fn worker_utilization(&self) -> f64 {
        let total = self.items_inline + self.items_stolen;
        if total == 0 {
            0.0
        } else {
            self.items_stolen as f64 / total as f64
        }
    }
}

/// Drop guard for [`Pool::install`]: pops the thread-local stack even if
/// `f` panics.
struct PopCurrent;

impl Drop for PopCurrent {
    fn drop(&mut self) {
        CURRENT.with(|current| {
            current.borrow_mut().pop();
        });
    }
}

/// A deferred-execution scope (see [`Pool::scope`]).
pub struct Scope<'scope> {
    jobs: Vec<ScopeJob<'scope>>,
}

type ScopeJob<'scope> = Box<dyn FnOnce() + Send + 'scope>;

impl<'scope> Scope<'scope> {
    /// Queues `job` to run when the scope executes. Jobs may borrow from
    /// the frame enclosing the `scope` call.
    pub fn spawn(&mut self, job: impl FnOnce() + Send + 'scope) {
        self.jobs.push(Box::new(job));
    }
}

// ---------------------------------------------------------------------------
// The current pool: thread-local override stack over a process global.
// ---------------------------------------------------------------------------

thread_local! {
    static CURRENT: RefCell<Vec<Arc<Shared>>> = const { RefCell::new(Vec::new()) };
}

static GLOBAL: Mutex<Option<Pool>> = Mutex::new(None);

/// Parses a thread count from the `RTPAR_THREADS` value; `None` for
/// absent, non-numeric or zero values.
fn parse_threads(value: Option<&str>) -> Option<usize> {
    value.and_then(|v| v.trim().parse::<usize>().ok()).filter(|n| *n >= 1)
}

/// The default pool size: `RTPAR_THREADS` if set to a positive integer,
/// else the available parallelism capped at 8 (analysis is CPU-bound).
pub fn default_threads() -> usize {
    parse_threads(std::env::var(THREADS_ENV).ok().as_deref())
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(2, NonZeroUsize::get).min(8))
}

/// The process-wide pool, created on first use with [`default_threads`].
pub fn global() -> Pool {
    let mut slot = GLOBAL.lock().expect("global pool lock");
    slot.get_or_insert_with(|| Pool::new(default_threads())).clone()
}

/// Resizes the global pool (the `serve --threads` knob). A no-op when the
/// pool already has `threads`; otherwise the old pool's workers drain and
/// shut down once its last clone drops. Returns the (new) global pool.
///
/// # Panics
///
/// Panics if `threads` is zero.
pub fn configure_global(threads: usize) -> Pool {
    let previous;
    let pool;
    {
        let mut slot = GLOBAL.lock().expect("global pool lock");
        if let Some(existing) = slot.as_ref() {
            if existing.threads() == threads {
                return existing.clone();
            }
        }
        pool = Pool::new(threads);
        previous = slot.replace(pool.clone());
    }
    // Join the displaced pool's workers outside the lock.
    drop(previous);
    pool
}

fn current_shared() -> Arc<Shared> {
    if let Some(shared) = CURRENT.with(|current| current.borrow().last().cloned()) {
        return shared;
    }
    global().inner.shared.clone()
}

/// Total parallelism of the current pool (installed, worker-local or
/// global — whichever [`par_map`] would use from this thread).
pub fn current_threads() -> usize {
    current_shared().threads
}

/// [`Pool::par_map_range`] on the current pool.
pub fn par_map_range<R, F>(len: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    current_shared().par_map_range(len, f)
}

/// [`Pool::par_map`] on the current pool.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    current_shared().par_map_range(items.len(), |index| f(&items[index]))
}

/// [`Pool::scope`] on the current pool.
pub fn scope<'scope, R>(f: impl FnOnce(&mut Scope<'scope>) -> R) -> R {
    current_shared().scope(f)
}

/// [`Pool::join`] on the current pool.
pub fn join<RA, RB, A, B>(a: A, b: B) -> (RA, RB)
where
    RA: Send,
    RB: Send,
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
{
    current_shared().join(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicBool;
    use std::time::{Duration, Instant};

    fn reference(len: usize) -> Vec<u64> {
        (0..len).map(|i| (i as u64).wrapping_mul(0x9E37_79B9).rotate_left(7)).collect()
    }

    #[test]
    fn par_map_matches_sequential_at_every_pool_size() {
        for threads in [1, 2, 3, 8] {
            let pool = Pool::new(threads);
            for len in [0usize, 1, 2, 7, 64, 257] {
                let out = pool
                    .par_map_range(len, |i| (i as u64).wrapping_mul(0x9E37_79B9).rotate_left(7));
                assert_eq!(out, reference(len), "threads={threads}, len={len}");
            }
        }
    }

    #[test]
    fn par_map_over_slice_preserves_input_order() {
        let pool = Pool::new(4);
        let items: Vec<String> = (0..50).map(|i| format!("item-{i}")).collect();
        let lens = pool.par_map(&items, |s| s.len());
        assert_eq!(lens, items.iter().map(String::len).collect::<Vec<_>>());
    }

    #[test]
    fn single_threaded_pool_runs_inline_on_the_caller() {
        let pool = Pool::new(1);
        assert_eq!(pool.background_workers(), 0, "no analysis workers may be spawned");
        let caller = std::thread::current().id();
        let ids = pool.par_map_range(64, |_| std::thread::current().id());
        assert!(ids.iter().all(|id| *id == caller), "threads=1 must single-thread the work");
    }

    #[test]
    fn workers_participate_in_large_batches() {
        let pool = Pool::new(4);
        assert_eq!(pool.background_workers(), 3);
        let ids = pool.par_map_range(64, |_| {
            std::thread::sleep(Duration::from_millis(2));
            std::thread::current().id()
        });
        let distinct: HashSet<_> = ids.into_iter().collect();
        assert!(distinct.len() >= 2, "expected workers to claim items, saw {}", distinct.len());
    }

    #[test]
    fn batches_carry_flight_frames_onto_worker_threads() {
        let recorder = rtobs::flight::FlightRecorder::new(1);
        let scope = recorder.begin("wcrt", 0, false);
        let pool = Pool::new(4);
        let sum: u64 = pool
            .install(|| {
                par_map_range(64, |i| {
                    // Workers only see the frame if the batch carried it.
                    rtobs::record_stage_lookup("analyze", true);
                    std::thread::sleep(Duration::from_millis(1));
                    i as u64
                })
            })
            .into_iter()
            .sum();
        assert_eq!(sum, 64 * 63 / 2);
        let finished = scope.finish(true);
        let analyze = rtobs::flight::stage_index("analyze").unwrap();
        assert_eq!(
            finished.record.stage_hits[analyze], 64,
            "every item attributes to the submitting request, wherever it ran"
        );
    }

    #[test]
    fn nested_par_map_terminates_and_stays_deterministic() {
        let expected: Vec<Vec<u64>> =
            (0..8u64).map(|i| (0..8u64).map(|j| i * 100 + j).collect()).collect();
        for threads in [1, 2, 4] {
            let pool = Pool::new(threads);
            let out = pool
                .install(|| par_map_range(8, |i| par_map_range(8, |j| i as u64 * 100 + j as u64)));
            assert_eq!(out, expected, "threads={threads}");
        }
    }

    #[test]
    fn panics_propagate_and_the_pool_survives() {
        let pool = Pool::new(3);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            pool.par_map_range(16, |i| {
                assert!(i != 11, "planted failure");
                i
            })
        }));
        assert!(outcome.is_err(), "an item panic must surface at the par_map call");
        // The pool keeps working after a batch panicked.
        assert_eq!(pool.par_map_range(4, |i| i * 2), vec![0, 2, 4, 6]);
    }

    #[test]
    fn join_returns_results_in_order_and_overlaps() {
        let pool = Pool::new(2);
        let b_started = AtomicBool::new(false);
        let (ra, rb) = pool.join(
            || {
                // Proof of overlap: `a` (on the caller) watches `b` start on
                // the worker. The deadline keeps a pathological scheduler
                // from hanging the test; the assertion below still catches
                // a runtime that serializes the two closures on one thread.
                let deadline = Instant::now() + Duration::from_secs(10);
                while !b_started.load(Ordering::SeqCst) && Instant::now() < deadline {
                    std::thread::yield_now();
                }
                b_started.load(Ordering::SeqCst)
            },
            || {
                b_started.store(true, Ordering::SeqCst);
                "b"
            },
        );
        assert!(ra, "b must have started while a was still running");
        assert_eq!(rb, "b");
    }

    #[test]
    fn scope_runs_every_job_with_borrowed_state() {
        let pool = Pool::new(4);
        let seen = Mutex::new(Vec::new());
        let marker = pool.scope(|scope| {
            for i in 0..10 {
                let seen = &seen;
                scope.spawn(move || seen.lock().unwrap().push(i));
            }
            "scope result"
        });
        assert_eq!(marker, "scope result");
        let mut seen = seen.into_inner().unwrap();
        seen.sort_unstable();
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn install_overrides_the_current_pool() {
        let pool = Pool::new(3);
        assert_eq!(pool.install(current_threads), 3);
        let nested = Pool::new(5);
        let (outer, inner) = pool.install(|| (current_threads(), nested.install(current_threads)));
        assert_eq!((outer, inner), (3, 5));
    }

    #[test]
    fn installed_pool_serves_free_functions() {
        let pool = Pool::new(1);
        let caller = std::thread::current().id();
        let ids = pool.install(|| par_map_range(32, |_| std::thread::current().id()));
        assert!(ids.iter().all(|id| *id == caller));
        let (a, b) = pool.install(|| join(|| 1, || 2));
        assert_eq!((a, b), (1, 2));
    }

    #[test]
    fn configure_global_resizes_and_is_idempotent() {
        let pool = configure_global(2);
        assert_eq!(pool.threads(), 2);
        assert_eq!(global().threads(), 2);
        // Same size: the existing pool is kept.
        let again = configure_global(2);
        assert!(Arc::ptr_eq(&pool.inner, &again.inner));
        let resized = configure_global(3);
        assert_eq!(resized.threads(), 3);
        assert_eq!(global().threads(), 3);
    }

    #[test]
    fn env_parsing_accepts_only_positive_integers() {
        assert_eq!(parse_threads(Some("4")), Some(4));
        assert_eq!(parse_threads(Some(" 8 ")), Some(8));
        assert_eq!(parse_threads(Some("0")), None);
        assert_eq!(parse_threads(Some("many")), None);
        assert_eq!(parse_threads(None), None);
        assert!(default_threads() >= 1);
    }

    #[test]
    fn dropping_a_pool_joins_its_workers() {
        let pool = Pool::new(4);
        let results = pool.par_map_range(8, |i| i + 1);
        assert_eq!(results.len(), 8);
        drop(pool); // must not hang
    }

    #[test]
    fn stats_account_for_every_item() {
        let pool = Pool::new(1);
        assert_eq!(pool.stats().batches, 0);
        pool.par_map_range(5, |i| i);
        pool.par_map_range(3, |i| i);
        let stats = pool.stats();
        assert_eq!(stats.batches, 2);
        // A single-threaded pool has nobody to steal: all items inline.
        assert_eq!((stats.items_inline, stats.items_stolen), (8, 0));
        assert_eq!(stats.queue_depth, 0);
        assert_eq!(stats.worker_utilization(), 0.0);
        assert_eq!(PoolStats { items_inline: 0, ..stats }.worker_utilization(), 0.0);
    }

    #[test]
    fn stats_split_inline_and_stolen_items_on_a_multithreaded_pool() {
        let pool = Pool::new(4);
        // Slow items so the background workers reliably claim some.
        pool.par_map_range(64, |i| {
            std::thread::sleep(std::time::Duration::from_millis(1));
            i
        });
        let stats = pool.stats();
        assert_eq!(stats.items_inline + stats.items_stolen, 64);
        assert!(stats.items_inline > 0, "the caller always participates: {stats:?}");
        let util = stats.worker_utilization();
        assert!((0.0..=1.0).contains(&util), "utilization out of range: {util}");
    }
}
