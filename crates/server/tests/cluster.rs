//! End-to-end cluster tests: 3 member nodes plus a stateless front, all
//! in-process, exercising consistent-hash routing, peer artifact fetch,
//! recompute parity, dead-peer fallback, and the peer wire protocol.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;

use rtcli::ServeOptions;
use rtserver::json::Json;
use rtserver::{Server, ServerHandle};

/// Reserves `n` distinct loopback ports by binding and dropping
/// listeners; the kernel leaves just-closed listening ports out of the
/// ephemeral pool long enough for the nodes to claim them.
fn reserve_ports(n: usize) -> Vec<u16> {
    let listeners: Vec<TcpListener> =
        (0..n).map(|_| TcpListener::bind("127.0.0.1:0").expect("reserve port")).collect();
    listeners.iter().map(|l| l.local_addr().expect("reserved addr").port()).collect()
}

/// Writes a peers file naming `ports` on loopback; returns its path.
fn write_peers_file(tag: &str, ports: &[u16]) -> PathBuf {
    let path = std::env::temp_dir().join(format!("rtcluster-{tag}-{}.txt", std::process::id()));
    let body: String = ports.iter().map(|p| format!("127.0.0.1:{p}\n")).collect();
    std::fs::write(&path, format!("# test cluster\n{body}")).expect("write peers file");
    path
}

struct TestCluster {
    nodes: Vec<ServerHandle>,
    front: ServerHandle,
    peers_path: PathBuf,
}

impl TestCluster {
    /// Spawns `n` member nodes and one stateless front, all sharing one
    /// peers file.
    fn spawn(tag: &str, n: usize) -> TestCluster {
        let ports = reserve_ports(n);
        let peers_path = write_peers_file(tag, &ports);
        let base = ServeOptions {
            host: "127.0.0.1".to_string(),
            threads: 2,
            cluster: Some(peers_path.display().to_string()),
            peer_deadline_ms: 1000,
            ..ServeOptions::default()
        };
        let nodes: Vec<ServerHandle> = ports
            .iter()
            .enumerate()
            .map(|(index, port)| {
                let opts = ServeOptions { port: *port, node_id: Some(index), ..base.clone() };
                Server::spawn(&opts).expect("spawn member node")
            })
            .collect();
        let front = Server::spawn(&ServeOptions { port: 0, front: true, ..base.clone() })
            .expect("spawn front");
        TestCluster { nodes, front, peers_path }
    }

    fn shutdown(self) {
        let TestCluster { nodes, front, peers_path } = self;
        one_shot(front.addr(), r#"{"cmd":"shutdown"}"#);
        front.join().expect("front exits cleanly");
        for node in nodes {
            one_shot(node.addr(), r#"{"cmd":"shutdown"}"#);
            node.join().expect("node exits cleanly");
        }
        std::fs::remove_file(peers_path).ok();
    }
}

/// Sends one line, reads one reply line, parses it.
fn one_shot(addr: SocketAddr, line: &str) -> Json {
    let stream = TcpStream::connect(addr).expect("connect");
    let mut writer = BufWriter::new(stream.try_clone().expect("clone"));
    let mut reader = BufReader::new(stream);
    writeln!(writer, "{line}").and_then(|()| writer.flush()).expect("send");
    let mut response = String::new();
    reader.read_line(&mut response).expect("recv");
    Json::parse(response.trim_end()).expect("reply is json")
}

/// A distinct little looping task; `seed` varies the loop bound and a
/// constant so every task hashes — and analyzes — differently.
fn task_source(seed: u64) -> String {
    format!(
        ".data {:#x}\nbuf: .word {seed}\n.text {:#x}\nstart: li r1, buf\nld r2, 0(r1)\n\
         li r3, {}\nloop: addi r3, r3, -1\nld r4, 0(r1)\nbne r3, r0, loop\n.bound loop, {}\nhalt\n",
        0x100000 + seed * 0x400,
        0x1000 + seed * 0x200,
        2 + seed % 3,
        2 + seed % 3,
    )
}

/// A `wcrt` request over `n` distinct tasks with inline sources.
fn wcrt_request(n: u64) -> String {
    let mut spec = String::from("cache 64 2 16\ncmiss 20\nccs 50\n");
    let mut sources = Vec::new();
    for seed in 0..n {
        spec.push_str(&format!("task t{seed} t{seed}.s {} {}\n", 10_000 * (seed + 1), seed + 1));
        sources.push((format!("t{seed}.s"), Json::from(task_source(seed).as_str())));
    }
    let sources = Json::Obj(sources.into_iter().collect::<std::collections::BTreeMap<_, _>>());
    Json::obj([
        ("cmd", Json::from("wcrt")),
        ("spec", Json::from(spec.as_str())),
        ("sources", sources),
    ])
    .encode()
}

fn num(doc: &Json, path: &[&str]) -> u64 {
    let mut cursor = doc;
    for key in path {
        cursor = cursor.get(key).unwrap_or_else(|| panic!("missing `{key}`"));
    }
    cursor.as_u64().unwrap_or_else(|| panic!("`{}` is not a number", path.join(".")))
}

/// `analyze`-stage misses of the server at `addr` — the number of
/// analysis computations it actually ran.
fn analyze_misses(addr: SocketAddr) -> u64 {
    let metrics = one_shot(addr, r#"{"cmd":"metrics"}"#);
    num(&metrics, &["metrics", "stages", "analyze", "misses"])
}

/// How many of the first `tasks` request keys each member owns, by
/// rebuilding the ring from the members' live addresses — ring
/// positions depend on the peer address strings, and test ports are
/// random per run, so ownership must be recomputed, never hardcoded.
fn owned_key_counts(nodes: &[ServerHandle], tasks: u64) -> Vec<u64> {
    let peers: Vec<String> =
        nodes.iter().map(|n| format!("127.0.0.1:{}", n.addr().port())).collect();
    let ring = rtring::Ring::new(&peers);
    let geometry = rtcache::CacheGeometry::new(64, 2, 16).unwrap();
    let model = rtwcet::TimingModel::default();
    let mut owned = vec![0u64; peers.len()];
    for seed in 0..tasks {
        let key = rtserver::store::AnalysisKey {
            program_hash: rtserver::store::program_hash(&format!("t{seed}"), &task_source(seed)),
            geometry,
            model,
        };
        owned[ring.owner(rtserver::store::route_key(&key))] += 1;
    }
    owned
}

fn peer_stats(addr: SocketAddr) -> Json {
    let status = one_shot(addr, r#"{"cmd":"statusz"}"#);
    status.get("status").and_then(|s| s.get("peer")).expect("statusz peer section").clone()
}

#[test]
fn cluster_output_is_byte_identical_with_single_node_recompute_parity() {
    const TASKS: u64 = 6;
    let request = wcrt_request(TASKS);

    // Baseline: one plain single-node server.
    let single = Server::spawn(&ServeOptions {
        host: "127.0.0.1".into(),
        port: 0,
        threads: 2,
        ..ServeOptions::default()
    })
    .expect("spawn single node");
    let reply = one_shot(single.addr(), &request);
    let expected =
        reply.get("output").and_then(Json::as_str).expect("single-node output").to_string();
    let single_misses = analyze_misses(single.addr());
    assert_eq!(single_misses, TASKS, "each distinct task analyzes once");
    one_shot(single.addr(), r#"{"cmd":"shutdown"}"#);
    single.join().expect("single node exits");

    // Cluster: 3 members + front; the same request through the front.
    let cluster = TestCluster::spawn("parity", 3);
    let reply = one_shot(cluster.front.addr(), &request);
    let output = reply.get("output").and_then(Json::as_str).expect("cluster output");
    assert_eq!(output, expected, "cluster output must be byte-identical to single-node");

    // Recompute parity: with every node up, the cluster-wide analyze
    // count equals the single-node count — owners computed each key
    // exactly once, the front fetched and computed nothing.
    let node_misses: u64 = cluster.nodes.iter().map(|n| analyze_misses(n.addr())).sum();
    let front_peer = peer_stats(cluster.front.addr());
    let fallbacks = num(&front_peer, &["fallbacks"]);
    assert_eq!(
        node_misses + fallbacks,
        single_misses,
        "cluster-wide recompute count must match single-node"
    );
    assert_eq!(fallbacks, 0, "healthy cluster: no local fallbacks on the front");
    assert_eq!(analyze_misses(cluster.front.addr()), 0, "the front owns (and computes) nothing");
    assert_eq!(num(&front_peer, &["fetch_hits"]), TASKS, "every task artifact came from a peer");
    assert_eq!(num(&front_peer, &["ring_nodes"]), 3);

    // The work really was sharded exactly along ring ownership: each
    // member computed precisely the keys an independently rebuilt ring
    // assigns to it, and every member's resident analyze keys are
    // ring-owned by it.
    let owned = owned_key_counts(&cluster.nodes, TASKS);
    for (node, expected_misses) in cluster.nodes.iter().zip(&owned) {
        assert_eq!(
            analyze_misses(node.addr()),
            *expected_misses,
            "a member computes exactly its ring share"
        );
    }
    for node in &cluster.nodes {
        let peer = peer_stats(node.addr());
        let status = one_shot(node.addr(), r#"{"cmd":"metrics"}"#);
        let entries = num(&status, &["metrics", "stages", "analyze", "entries"]);
        assert_eq!(
            num(&peer, &["ring_owned_keys"]),
            entries,
            "a member's resident analyze artifacts are exactly its ring share"
        );
    }

    // Repeating the request is pure cache: no new computations anywhere.
    let reply = one_shot(cluster.front.addr(), &request);
    assert_eq!(reply.get("output").and_then(Json::as_str), Some(expected.as_str()));
    let repeat_misses: u64 = cluster.nodes.iter().map(|n| analyze_misses(n.addr())).sum();
    assert_eq!(repeat_misses, node_misses, "repeat request recomputes nothing");

    // Prometheus exposition carries the peer families on every role.
    let prom = one_shot(cluster.front.addr(), r#"{"cmd":"metrics_prom"}"#);
    let text = prom.get("output").and_then(Json::as_str).expect("prometheus text");
    rtserver::metrics::validate_prometheus(text).expect("conformant exposition");
    assert!(text.contains(&format!("rtserver_peer_fetch_hits_total {TASKS}")), "{text}");
    assert!(text.contains("rtserver_peer_fetch_misses_total 0"), "{text}");
    assert!(text.contains("rtserver_peer_fetch_timeouts_total 0"), "{text}");
    assert!(text.contains("rtserver_ring_owned_keys 0"), "{text}");

    cluster.shutdown();
}

#[test]
fn a_dead_node_costs_latency_never_correctness() {
    const TASKS: u64 = 5;
    let request = wcrt_request(TASKS);

    // Baseline output from a healthy single node.
    let single = Server::spawn(&ServeOptions {
        host: "127.0.0.1".into(),
        port: 0,
        threads: 2,
        ..ServeOptions::default()
    })
    .expect("spawn single node");
    let expected = one_shot(single.addr(), &request)
        .get("output")
        .and_then(Json::as_str)
        .expect("single-node output")
        .to_string();
    one_shot(single.addr(), r#"{"cmd":"shutdown"}"#);
    single.join().expect("single node exits");

    // Kill one member before any traffic: keys it owns must fall back to
    // local compute on the front. Ring positions depend on the peer
    // addresses (ports are random per test run), so pick the victim by
    // rebuilding the ring and finding a node that owns at least one of
    // the request's keys — killing a node that owns nothing would make
    // this test vacuous.
    let mut cluster = TestCluster::spawn("deadnode", 3);
    let owned = owned_key_counts(&cluster.nodes, TASKS);
    let victim_index = owned.iter().position(|&n| n > 0).expect("5 keys land somewhere");
    let victim_keys = owned[victim_index];
    let victim = cluster.nodes.remove(victim_index);
    one_shot(victim.addr(), r#"{"cmd":"shutdown"}"#);
    victim.join().expect("victim exits");

    let reply = one_shot(cluster.front.addr(), &request);
    let output = reply.get("output").and_then(Json::as_str).expect("cluster output");
    assert_eq!(output, expected, "a dead peer must not change a single byte of output");

    // The failure shows up in the counters: the dead node's keys timed
    // out and fell back; cluster-wide recompute count still matches
    // single-node (owner computes + front fallbacks, each key once).
    let front_peer = peer_stats(cluster.front.addr());
    let fallbacks = num(&front_peer, &["fallbacks"]);
    assert_eq!(fallbacks, victim_keys, "exactly the dead node's keys fell back: {front_peer:?}");
    assert_eq!(num(&front_peer, &["fetch_timeouts"]), fallbacks);
    let node_misses: u64 = cluster.nodes.iter().map(|n| analyze_misses(n.addr())).sum();
    assert_eq!(node_misses + fallbacks, TASKS, "every key computed exactly once cluster-wide");

    cluster.shutdown();
}

#[test]
fn ownership_is_deterministic_across_instances_and_thread_counts() {
    use rtserver::store::{route_key, AnalysisKey};
    let geometry = rtcache::CacheGeometry::new(64, 2, 16).unwrap();
    let model = rtwcet::TimingModel::default();
    let peers: Vec<String> = (0..3).map(|i| format!("10.0.0.{i}:7227")).collect();
    // Ownership must be a pure function of (peers, key): independent of
    // ring instance, construction order, and however many threads the
    // analysis pool runs — the routing layer never consults pool state.
    let ring_a = rtring::Ring::new(&peers);
    let ring_b = rtring::Ring::new(&peers);
    let owners: Vec<usize> = (0..64u64)
        .map(|seed| {
            let key = AnalysisKey {
                program_hash: rtserver::store::program_hash(
                    &format!("t{seed}"),
                    &format!("li r1, {seed}\nhalt\n"),
                ),
                geometry,
                model,
            };
            let route = route_key(&key);
            assert_eq!(ring_a.owner(route), ring_b.owner(route));
            ring_a.owner(route)
        })
        .collect();
    let pools = [rtpar::Pool::new(1), rtpar::Pool::new(8)];
    for pool in &pools {
        let again: Vec<usize> = pool.install(|| {
            rtpar::par_map_range(64, |seed| {
                let key = AnalysisKey {
                    program_hash: rtserver::store::program_hash(
                        &format!("t{seed}"),
                        &format!("li r1, {seed}\nhalt\n"),
                    ),
                    geometry,
                    model,
                };
                ring_a.owner(route_key(&key))
            })
        });
        assert_eq!(again, owners, "ownership must not depend on thread count");
    }
}

#[test]
fn peer_frames_round_trip_and_oversized_payloads_are_typed() {
    let cluster = TestCluster::spawn("wire", 2);
    let node = cluster.nodes[0].addr();

    // A raw peer_get against a member returns a decodable artifact.
    let source = task_source(0);
    let get = Json::obj([
        ("id", Json::from(7u64)),
        ("cmd", Json::from("peer_get")),
        ("name", Json::from("t0")),
        ("source", Json::from(source.as_str())),
        ("geometry", Json::Arr(vec![Json::from(64u64), Json::from(2u64), Json::from(16u64)])),
        ("model", Json::Arr(vec![Json::from(1u64), Json::from(20u64)])),
    ])
    .encode();
    let reply = one_shot(node, &get);
    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true), "{reply:?}");
    let artifact = reply.get("artifact").expect("artifact payload");
    let (key, rebuilt) = rtserver::cluster::artifact_from_json(artifact).expect("artifact decodes");
    assert_eq!(key.program_hash, rtserver::store::program_hash("t0", &source));
    assert!(rebuilt.wcet() > 0);

    // peer_put of that artifact into the *other* node: stored once, then
    // reported already-present.
    let other = cluster.nodes[1].addr();
    let put = Json::obj([("cmd", Json::from("peer_put")), ("artifact", artifact.clone())]).encode();
    let reply = one_shot(other, &put);
    assert_eq!(reply.get("output").and_then(Json::as_str), Some("stored"), "{reply:?}");
    let reply = one_shot(other, &put);
    assert_eq!(reply.get("output").and_then(Json::as_str), Some("already present"));

    // Oversized single-command spec: typed payload_too_large.
    let big = "x".repeat((1 << 20) + 1);
    let oversized =
        Json::obj([("cmd", Json::from("wcrt")), ("spec", Json::from(big.as_str()))]).encode();
    let reply = one_shot(node, &oversized);
    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(reply.get("code").and_then(Json::as_str), Some("payload_too_large"), "{reply:?}");

    // Oversized *batch item*: the same typed code, with the item index
    // in the message.
    let item = Json::obj([("cmd", Json::from("wcrt")), ("spec", Json::from(big.as_str()))]);
    let batch = Json::obj([
        ("cmd", Json::from("batch")),
        (
            "items",
            Json::Arr(vec![
                Json::obj([("cmd", Json::from("wcrt")), ("spec", Json::from("cache 64 2 16\n"))]),
                item,
            ]),
        ),
    ])
    .encode();
    let reply = one_shot(node, &batch);
    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(reply.get("code").and_then(Json::as_str), Some("payload_too_large"), "{reply:?}");
    let message = reply.get("error").and_then(Json::as_str).unwrap_or("");
    assert!(message.contains("item 1"), "the offending item is named: {message}");

    // Oversized peer_put artifact: typed payload_too_large too.
    let fat_put = Json::obj([
        ("cmd", Json::from("peer_put")),
        ("artifact", Json::obj([("blob", Json::from(big.as_str()))])),
    ])
    .encode();
    let reply = one_shot(node, &fat_put);
    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(reply.get("code").and_then(Json::as_str), Some("payload_too_large"), "{reply:?}");

    cluster.shutdown();
}
