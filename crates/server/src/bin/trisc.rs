//! The `trisc` binary: one-shot analysis commands plus `trisc serve`.

use std::process::ExitCode;

fn main() -> ExitCode {
    // `RTOBS=1` keeps an rtobs recording session alive for the whole
    // invocation even without `--trace-out` (counters only, no file);
    // commands that take `--trace-out` install their own session too.
    let _env_session = rtobs::env_session();
    match rtcli::parse(std::env::args().skip(1).collect()) {
        Ok(rtcli::Invocation::Output(output)) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Ok(rtcli::Invocation::Serve(opts)) => match rtserver::run(&opts) {
            Ok(()) => ExitCode::SUCCESS,
            Err(error) => {
                eprintln!("trisc serve: {error}");
                ExitCode::from(2)
            }
        },
        Err(error) => {
            eprintln!("trisc: {error}");
            eprintln!("{}", rtcli::USAGE);
            ExitCode::from(2)
        }
    }
}
