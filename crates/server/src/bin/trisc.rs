//! The `trisc` binary: one-shot analysis commands plus `trisc serve`
//! and `trisc explore`.

use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    // `RTOBS=1` keeps an rtobs recording session alive for the whole
    // invocation even without `--trace-out` (counters only, no file);
    // commands that take `--trace-out` install their own session too.
    let _env_session = rtobs::env_session();
    match rtcli::parse(std::env::args().skip(1).collect()) {
        Ok(rtcli::Invocation::Output(output)) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Ok(rtcli::Invocation::Serve(opts)) => match rtserver::run(&opts) {
            Ok(()) => ExitCode::SUCCESS,
            Err(error) => {
                eprintln!("trisc serve: {error}");
                ExitCode::from(2)
            }
        },
        Ok(rtcli::Invocation::Status(opts)) => match rtserver::ops::run_status(&opts) {
            Ok(report) => {
                print!("{report}");
                ExitCode::SUCCESS
            }
            Err(error) => {
                eprintln!("trisc status: {error}");
                ExitCode::from(2)
            }
        },
        Ok(rtcli::Invocation::Explore { grid, trace_out }) => match run_explore(&grid, trace_out) {
            Ok(output) => {
                print!("{output}");
                ExitCode::SUCCESS
            }
            Err(error) => {
                eprintln!("trisc explore: {error}");
                ExitCode::from(2)
            }
        },
        Err(error) => {
            eprintln!("trisc: {error}");
            eprintln!("{}", rtcli::USAGE);
            ExitCode::from(2)
        }
    }
}

/// `trisc explore GRID [--trace-out TRACE.json]`: run the sweep in
/// process, optionally flushing a Chrome trace of the whole run.
fn run_explore(grid: &str, trace_out: Option<String>) -> Result<String, rtcli::CliError> {
    let session = trace_out.as_deref().map(|_| rtobs::begin());
    let output = rtexplore::cmd_explore(Path::new(grid))?;
    if let (Some(session), Some(path)) = (session, trace_out.as_deref()) {
        session
            .recorder()
            .write_chrome_trace(Path::new(path))
            .map_err(|e| rtcli::CliError::Io(format!("{path}: {e}")))?;
    }
    Ok(output)
}
