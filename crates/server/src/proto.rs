//! The wire protocol: one JSON object per line, in both directions.
//!
//! ## Requests
//!
//! ```text
//! {"id": 1, "cmd": "wcrt", "spec": "cache 512 4 16\ntask a a.s 1000 1\n",
//!  "sources": {"a.s": "start: li r1, 7\nhalt\n"}}
//! ```
//!
//! | `cmd`      | payload                                   | reply payload       |
//! |------------|-------------------------------------------|---------------------|
//! | `ping`     | —                                         | `"output": "pong"`  |
//! | `wcet`     | `spec` (+ optional `sources`)             | `trisc wcet` text per task |
//! | `crpd`     | `spec` with exactly two tasks             | `trisc crpd` text   |
//! | `wcrt`     | `spec`                                    | `trisc wcrt` text   |
//! | `sim`      | `spec` (+ optional `horizon` in cycles)   | `trisc sim` text    |
//! | `explore`  | `spec` + `grid` (grid-file text)          | streamed frames (see below) |
//! | `batch`    | `items` (array of wcet/crpd/wcrt/sim requests) | streamed frames (see below) |
//! | `metrics`  | —                                         | `"metrics": {...}`  |
//! | `metrics_prom` | —                                     | Prometheus text exposition |
//! | `statusz`  | —                                         | `"status": {...}` live ops snapshot |
//! | `journal`  | optional `n` (record count, default 32)   | `"journal": [...]` last flight records |
//! | `flight`   | —                                         | `"flights": [...]` slow-request black boxes |
//! | `shutdown` | —                                         | ack, then drain     |
//!
//! The `spec` payload is exactly the [`SystemSpec`] text format the
//! one-shot CLI reads from disk (`trisc wcrt system.spec`); `sources`
//! optionally maps a task's `FILE` field to inline assembly text so a
//! request can be self-contained. Files not found in `sources` are read
//! from the server's filesystem as a fallback.
//!
//! The `metrics` payload reports the staged artifact DAG alongside the
//! endpoint counters: `"stages"` maps each pipeline stage (`assemble`,
//! `analyze`, `crpd_cell`) to its `hits`/`misses`/`entries`/
//! `single_flight_waits`, and `"artifact_cache"` keeps the `analyze`
//! stage's counters under their historic name. `metrics_prom` exposes
//! the same data as `rtserver_stage_cache_*{stage="..."}` families.
//!
//! ## Admission control
//!
//! Analysis-class requests (`wcet`/`crpd`/`wcrt`/`sim`/`explore`/
//! `batch`) may carry an optional `deadline_ms` field overriding the
//! server's `--deadline-ms`: a request whose queue wait already exceeds
//! its deadline is answered `{"ok": false, "code":
//! "deadline_exceeded", ...}` *before* any analysis runs. When the
//! server's in-flight count crosses `--max-inflight`, new analysis
//! requests are shed with `{"ok": false, "code": "overloaded", ...}`;
//! ops-plane commands (ping, metrics, statusz, …) are never shed, so
//! the server stays observable under overload.
//!
//! ## Responses
//!
//! Success: `{"id": 1, "ok": true, "output": "..."}` (plus `"metrics"`
//! for the metrics command). Failure: `{"id": 1, "ok": false, "error":
//! "..."}`, with a machine-readable `"code"` field (`overloaded`,
//! `deadline_exceeded`) on typed admission errors. The `id` is echoed
//! verbatim when the request carried one, so clients may pipeline
//! requests over one connection.
//!
//! `explore` and `batch` are the *streaming* commands: they answer with
//! several NDJSON frames sharing the request's `id`. `explore` emits one
//! `{"ok": true, "event": "points", "points": [...]}` frame per
//! evaluated batch (each point carries `index`, `schedulable` and its
//! rendered `row`), then a final `{"ok": true, "event": "done",
//! "points_total": N, "front": [indices], "front_size": F,
//! "output": "..."}` frame whose `output` holds the explained Pareto
//! front. `batch` emits one `{"ok": ..., "event": "result", "index": k,
//! "output"/"error": ...}` frame per item, in item order, then a final
//! `{"ok": true, "event": "done", "results": N, "errors": E}` frame.
//! Clients read frames until they see `event == "done"` (or a frame with
//! `ok == false` and no `event`).
//!
//! [`SystemSpec`]: rtcli::SystemSpec

use std::collections::BTreeMap;

use crate::json::Json;

/// One parsed request frame.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Echoed back in the response if present.
    pub id: Option<u64>,
    /// What to do.
    pub cmd: Command,
    /// Per-request deadline override (milliseconds of queue wait after
    /// which the request is rejected instead of analyzed). Falls back to
    /// the server's `--deadline-ms`; only analysis-class commands check.
    pub deadline_ms: Option<u64>,
}

/// The request payload per command.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Liveness probe.
    Ping,
    /// Observability snapshot.
    Metrics,
    /// Observability snapshot in the Prometheus text exposition format.
    MetricsProm,
    /// Live ops snapshot from the flight recorder: uptime, inflight,
    /// per-endpoint quantiles, stage hit rates.
    Statusz,
    /// The last `n` flight records from the recorder's ring (newest
    /// [`FlightRecorder::capacity`] survive; default 32).
    ///
    /// [`FlightRecorder::capacity`]: rtobs::flight::FlightRecorder::capacity
    Journal {
        /// How many records to return (clamped to the ring capacity).
        n: Option<u64>,
    },
    /// The black-box buffer: full span trees of recent requests slower
    /// than `--slow-ms`.
    Flight,
    /// Stop accepting connections, drain in-flight work, exit.
    Shutdown,
    /// Per-task WCET reports for every task of the spec.
    Wcet(SpecPayload),
    /// The four reload bounds for a two-task spec (first = preempted,
    /// second = preempting).
    Crpd(SpecPayload),
    /// The WCRT table for the spec's task system.
    Wcrt(SpecPayload),
    /// Scheduler co-simulation of the spec's task system.
    Sim {
        /// The task system.
        payload: SpecPayload,
        /// Simulation horizon in cycles (default: the CLI's).
        horizon: Option<u64>,
    },
    /// Design-space sweep over the spec; streams per-batch point frames
    /// and a final Pareto-front frame.
    Explore {
        /// The base task system the grid perturbs.
        payload: SpecPayload,
        /// Grid-file text declaring the swept axes (the same format
        /// `trisc explore` reads from disk; any `spec` directive inside
        /// it is ignored — the base system is this request's `spec`).
        grid: String,
    },
    /// Many analysis specs in one round-trip: streams one `result` frame
    /// per item (in item order) and a final `done` frame.
    Batch {
        /// The analysis requests to execute (wcet/crpd/wcrt/sim only).
        items: Vec<Command>,
    },
}

impl Command {
    /// The metrics label for this command.
    pub fn endpoint(&self) -> &'static str {
        match self {
            Command::Ping => "ping",
            Command::Metrics => "metrics",
            Command::MetricsProm => "metrics_prom",
            Command::Statusz => "statusz",
            Command::Journal { .. } => "journal",
            Command::Flight => "flight",
            Command::Shutdown => "shutdown",
            Command::Wcet(_) => "wcet",
            Command::Crpd(_) => "crpd",
            Command::Wcrt(_) => "wcrt",
            Command::Sim { .. } => "sim",
            Command::Explore { .. } => "explore",
            Command::Batch { .. } => "batch",
        }
    }

    /// Whether this command runs analysis (and is therefore subject to
    /// shedding and deadlines), as opposed to the always-available ops
    /// plane.
    pub fn is_analysis(&self) -> bool {
        matches!(
            self,
            Command::Wcet(_)
                | Command::Crpd(_)
                | Command::Wcrt(_)
                | Command::Sim { .. }
                | Command::Explore { .. }
                | Command::Batch { .. }
        )
    }
}

/// A system spec travelling over the wire, with optional inline sources.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SpecPayload {
    /// [`rtcli::SystemSpec`] text.
    pub spec: String,
    /// `FILE` field → assembly text. Tasks whose file is absent here fall
    /// back to the server's filesystem.
    pub sources: BTreeMap<String, String>,
}

impl Request {
    /// Parses one request line.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for malformed JSON, a missing or
    /// unknown `cmd`, or payload fields of the wrong type.
    pub fn parse(line: &str) -> Result<Request, String> {
        let doc = Json::parse(line).map_err(|e| e.to_string())?;
        let id = match doc.get("id") {
            None | Some(Json::Null) => None,
            Some(v) => Some(v.as_u64().ok_or("`id` must be a non-negative integer")?),
        };
        let deadline_ms = match doc.get("deadline_ms") {
            None | Some(Json::Null) => None,
            Some(v) => Some(v.as_u64().ok_or("`deadline_ms` must be a non-negative integer")?),
        };
        let cmd = parse_command(&doc)?;
        Ok(Request { id, cmd, deadline_ms })
    }
}

fn parse_command(doc: &Json) -> Result<Command, String> {
    let cmd_name = doc.get("cmd").and_then(Json::as_str).ok_or("missing string field `cmd`")?;
    let cmd = match cmd_name {
        "ping" => Command::Ping,
        "metrics" => Command::Metrics,
        "metrics_prom" => Command::MetricsProm,
        "statusz" => Command::Statusz,
        "journal" => {
            let n = match doc.get("n") {
                None | Some(Json::Null) => None,
                Some(v) => Some(v.as_u64().ok_or("`n` must be a non-negative integer")?),
            };
            Command::Journal { n }
        }
        "flight" => Command::Flight,
        "shutdown" => Command::Shutdown,
        "batch" => {
            let Some(Json::Arr(items)) = doc.get("items") else {
                return Err("missing array field `items`".to_string());
            };
            if items.is_empty() {
                return Err("`items` must not be empty".to_string());
            }
            if items.len() > MAX_BATCH_ITEMS {
                return Err(format!(
                    "batch of {} items exceeds the {MAX_BATCH_ITEMS}-item limit",
                    items.len()
                ));
            }
            let items = items
                .iter()
                .enumerate()
                .map(|(index, item)| {
                    let cmd = parse_command(item).map_err(|e| format!("item {index}: {e}"))?;
                    if !matches!(
                        cmd,
                        Command::Wcet(_) | Command::Crpd(_) | Command::Wcrt(_) | Command::Sim { .. }
                    ) {
                        return Err(format!(
                            "item {index}: cmd `{}` is not batchable (expected wcet|crpd|wcrt|sim)",
                            cmd.endpoint()
                        ));
                    }
                    Ok(cmd)
                })
                .collect::<Result<Vec<Command>, String>>()?;
            Command::Batch { items }
        }
        "wcet" => Command::Wcet(spec_payload(doc)?),
        "crpd" => Command::Crpd(spec_payload(doc)?),
        "wcrt" => Command::Wcrt(spec_payload(doc)?),
        "sim" => {
            let horizon = match doc.get("horizon") {
                None | Some(Json::Null) => None,
                Some(v) => Some(v.as_u64().ok_or("`horizon` must be a non-negative integer")?),
            };
            Command::Sim { payload: spec_payload(doc)?, horizon }
        }
        "explore" => {
            let grid = doc
                .get("grid")
                .and_then(Json::as_str)
                .ok_or("missing string field `grid`")?
                .to_string();
            Command::Explore { payload: spec_payload(doc)?, grid }
        }
        other => {
            return Err(format!(
                "unknown cmd `{other}` (expected ping|wcet|crpd|wcrt|sim|explore|batch|metrics|metrics_prom|statusz|journal|flight|shutdown)"
            ))
        }
    };
    Ok(cmd)
}

/// Upper bound on the combined `spec` + `sources` payload of one
/// request. Typed rejection (instead of letting a multi-megabyte spec
/// reach the assembler) keeps one hostile or buggy client from pinning
/// a worker on parse work.
pub const MAX_SPEC_BYTES: usize = 1 << 20;

/// Upper bound on the items of one `batch` request (the per-item
/// [`MAX_SPEC_BYTES`] cap still applies to each item individually).
pub const MAX_BATCH_ITEMS: usize = 64;

fn spec_payload(doc: &Json) -> Result<SpecPayload, String> {
    let spec =
        doc.get("spec").and_then(Json::as_str).ok_or("missing string field `spec`")?.to_string();
    let mut sources = BTreeMap::new();
    let mut total = spec.len();
    match doc.get("sources") {
        None | Some(Json::Null) => {}
        Some(Json::Obj(map)) => {
            for (file, text) in map {
                let text =
                    text.as_str().ok_or_else(|| format!("source `{file}` must be a string"))?;
                total += file.len() + text.len();
                sources.insert(file.clone(), text.to_string());
            }
        }
        Some(_) => return Err("`sources` must be an object of strings".to_string()),
    }
    if total > MAX_SPEC_BYTES {
        return Err(format!(
            "spec payload of {total} bytes exceeds the {MAX_SPEC_BYTES}-byte limit"
        ));
    }
    Ok(SpecPayload { spec, sources })
}

fn id_json(id: Option<u64>) -> Json {
    id.map_or(Json::Null, Json::from)
}

/// Encodes a success response carrying output text.
pub fn ok_response(id: Option<u64>, output: &str) -> String {
    Json::obj([("id", id_json(id)), ("ok", Json::Bool(true)), ("output", Json::from(output))])
        .encode()
}

/// Encodes a success response carrying a structured payload under `key`.
pub fn ok_response_with(id: Option<u64>, key: &str, value: Json) -> String {
    Json::obj([("id", id_json(id)), ("ok", Json::Bool(true)), (key, value)]).encode()
}

/// Encodes a failure response.
pub fn err_response(id: Option<u64>, error: &str) -> String {
    Json::obj([("id", id_json(id)), ("ok", Json::Bool(false)), ("error", Json::from(error))])
        .encode()
}

/// Encodes a typed failure response with a machine-readable `code`
/// (`overloaded`, `deadline_exceeded`) alongside the human message.
pub fn err_response_coded(id: Option<u64>, code: &str, error: &str) -> String {
    Json::obj([
        ("id", id_json(id)),
        ("ok", Json::Bool(false)),
        ("code", Json::from(code)),
        ("error", Json::from(error)),
    ])
    .encode()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_each_command() {
        let r = Request::parse(r#"{"id":3,"cmd":"ping"}"#).unwrap();
        assert_eq!(r.id, Some(3));
        assert_eq!(r.cmd, Command::Ping);
        assert_eq!(r.cmd.endpoint(), "ping");

        let r = Request::parse(
            r#"{"cmd":"wcrt","spec":"task a a.s 1 1\n","sources":{"a.s":"halt\n"}}"#,
        )
        .unwrap();
        assert_eq!(r.id, None);
        let Command::Wcrt(p) = r.cmd else { panic!("expected wcrt") };
        assert_eq!(p.spec, "task a a.s 1 1\n");
        assert_eq!(p.sources.get("a.s").map(String::as_str), Some("halt\n"));

        let r = Request::parse(r#"{"cmd":"sim","spec":"s","horizon":4096}"#).unwrap();
        let Command::Sim { horizon, .. } = r.cmd else { panic!("expected sim") };
        assert_eq!(horizon, Some(4096));

        let r = Request::parse(r#"{"cmd":"metrics_prom"}"#).unwrap();
        assert_eq!(r.cmd, Command::MetricsProm);
        assert_eq!(r.cmd.endpoint(), "metrics_prom");

        let r = Request::parse(r#"{"cmd":"statusz"}"#).unwrap();
        assert_eq!(r.cmd, Command::Statusz);
        assert_eq!(r.cmd.endpoint(), "statusz");

        let r = Request::parse(r#"{"cmd":"journal","n":5}"#).unwrap();
        assert_eq!(r.cmd, Command::Journal { n: Some(5) });
        assert_eq!(r.cmd.endpoint(), "journal");
        let r = Request::parse(r#"{"cmd":"journal"}"#).unwrap();
        assert_eq!(r.cmd, Command::Journal { n: None });

        let r = Request::parse(r#"{"cmd":"flight"}"#).unwrap();
        assert_eq!(r.cmd, Command::Flight);
        assert_eq!(r.cmd.endpoint(), "flight");

        let r = Request::parse(r#"{"cmd":"explore","spec":"s","grid":"sets 32 64\n"}"#).unwrap();
        assert_eq!(r.cmd.endpoint(), "explore");
        assert!(r.cmd.is_analysis());
        assert_eq!(r.deadline_ms, None);
        let Command::Explore { payload, grid } = r.cmd else { panic!("expected explore") };
        assert_eq!(payload.spec, "s");
        assert_eq!(grid, "sets 32 64\n");

        let r = Request::parse(
            r#"{"id":7,"cmd":"batch","deadline_ms":250,"items":[{"cmd":"wcet","spec":"a"},{"cmd":"sim","spec":"b","horizon":9}]}"#,
        )
        .unwrap();
        assert_eq!(r.id, Some(7));
        assert_eq!(r.deadline_ms, Some(250));
        assert_eq!(r.cmd.endpoint(), "batch");
        assert!(r.cmd.is_analysis());
        let Command::Batch { items } = r.cmd else { panic!("expected batch") };
        assert_eq!(items.len(), 2);
        assert_eq!(items[0].endpoint(), "wcet");
        let Command::Sim { horizon, .. } = &items[1] else { panic!("expected sim item") };
        assert_eq!(*horizon, Some(9));

        assert!(!Command::Ping.is_analysis());
        assert!(!Command::Statusz.is_analysis());
    }

    #[test]
    fn rejects_malformed_requests() {
        for (line, needle) in [
            ("{", "invalid json"),
            (r#"{"cmd":"frobnicate"}"#, "unknown cmd"),
            (r#"{"id":"x","cmd":"ping"}"#, "`id`"),
            (r#"{"cmd":"wcrt"}"#, "`spec`"),
            (r#"{"cmd":"wcrt","spec":"s","sources":[1]}"#, "`sources`"),
            (r#"{"cmd":"wcrt","spec":"s","sources":{"a.s":7}}"#, "a.s"),
            (r#"{"cmd":"sim","spec":"s","horizon":-1}"#, "`horizon`"),
            (r#"{"cmd":"journal","n":-3}"#, "`n`"),
            (r#"{"cmd":"explore","spec":"s"}"#, "`grid`"),
            (r#"{"cmd":"explore","grid":"g"}"#, "`spec`"),
            (r#"{"spec":"s"}"#, "`cmd`"),
            (r#"{"cmd":"ping","deadline_ms":-1}"#, "`deadline_ms`"),
            (r#"{"cmd":"batch"}"#, "`items`"),
            (r#"{"cmd":"batch","items":[]}"#, "empty"),
            (r#"{"cmd":"batch","items":[{"cmd":"ping"}]}"#, "not batchable"),
            (r#"{"cmd":"batch","items":[{"cmd":"wcet","spec":"s"},{"spec":"x"}]}"#, "item 1"),
        ] {
            let err = Request::parse(line).unwrap_err();
            assert!(err.contains(needle), "{line}: {err}");
        }
    }

    #[test]
    fn rejects_oversized_spec_payloads() {
        let big = "x".repeat(MAX_SPEC_BYTES + 1);
        let line = format!(r#"{{"cmd":"wcrt","spec":"{big}"}}"#);
        let err = Request::parse(&line).unwrap_err();
        assert!(err.contains("exceeds"), "{err}");

        // The limit covers spec + sources combined, and sits just above
        // the boundary: an exactly-at-limit payload is accepted.
        let spec = "task a a.s 1 1\n";
        let source = "y".repeat(MAX_SPEC_BYTES);
        let line = format!(r#"{{"cmd":"wcet","spec":"{spec}","sources":{{"a.s":"{source}"}}}}"#);
        let err = Request::parse(&line.replace('\n', "\\n")).unwrap_err();
        assert!(err.contains("exceeds"), "{err}");

        let ok = format!(r#"{{"cmd":"wcrt","spec":"{}"}}"#, "z".repeat(MAX_SPEC_BYTES));
        assert!(Request::parse(&ok).is_ok());
    }

    #[test]
    fn responses_are_single_line_json() {
        let ok = ok_response(Some(1), "two\nlines\n");
        assert!(!ok.contains('\n'));
        let doc = Json::parse(&ok).unwrap();
        assert_eq!(doc.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(doc.get("output").unwrap().as_str(), Some("two\nlines\n"));

        let err = err_response(None, "boom");
        let doc = Json::parse(&err).unwrap();
        assert_eq!(doc.get("ok").unwrap().as_bool(), Some(false));
        assert_eq!(doc.get("id"), Some(&Json::Null));

        let shed = err_response_coded(Some(4), "overloaded", "server at capacity");
        let doc = Json::parse(&shed).unwrap();
        assert_eq!(doc.get("ok").unwrap().as_bool(), Some(false));
        assert_eq!(doc.get("code").unwrap().as_str(), Some("overloaded"));
        assert_eq!(doc.get("id").unwrap().as_u64(), Some(4));
    }

    #[test]
    fn rejects_oversized_batches() {
        let item = r#"{"cmd":"wcet","spec":"s"}"#;
        let items = vec![item; MAX_BATCH_ITEMS + 1].join(",");
        let err = Request::parse(&format!(r#"{{"cmd":"batch","items":[{items}]}}"#)).unwrap_err();
        assert!(err.contains("65 items exceeds"), "{err}");
        let items = vec![item; MAX_BATCH_ITEMS].join(",");
        assert!(Request::parse(&format!(r#"{{"cmd":"batch","items":[{items}]}}"#)).is_ok());
    }
}
