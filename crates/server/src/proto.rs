//! The wire protocol: one JSON object per line, in both directions.
//!
//! ## Requests
//!
//! ```text
//! {"id": 1, "cmd": "wcrt", "spec": "cache 512 4 16\ntask a a.s 1000 1\n",
//!  "sources": {"a.s": "start: li r1, 7\nhalt\n"}}
//! ```
//!
//! | `cmd`      | payload                                   | reply payload       |
//! |------------|-------------------------------------------|---------------------|
//! | `ping`     | —                                         | `"output": "pong"`  |
//! | `wcet`     | `spec` (+ optional `sources`)             | `trisc wcet` text per task |
//! | `crpd`     | `spec` with exactly two tasks             | `trisc crpd` text   |
//! | `wcrt`     | `spec`                                    | `trisc wcrt` text   |
//! | `sim`      | `spec` (+ optional `horizon` in cycles)   | `trisc sim` text    |
//! | `explore`  | `spec` + `grid` (grid-file text)          | streamed frames (see below) |
//! | `batch`    | `items` (array of wcet/crpd/wcrt/sim requests) | streamed frames (see below) |
//! | `metrics`  | —                                         | `"metrics": {...}`  |
//! | `metrics_prom` | —                                     | Prometheus text exposition |
//! | `statusz`  | —                                         | `"status": {...}` live ops snapshot |
//! | `journal`  | optional `n` (record count, default 32)   | `"journal": [...]` last flight records |
//! | `flight`   | —                                         | `"flights": [...]` slow-request black boxes |
//! | `peer_get` | `name`, `source`, `geometry`, `model`     | `"artifact": {...}` analyzed-program core |
//! | `peer_put` | `artifact` (as returned by `peer_get`)    | ack (best-effort insert) |
//! | `shutdown` | —                                         | ack, then drain     |
//!
//! `peer_get`/`peer_put` are the cluster peer-fetch frames (see the
//! `cluster` module): `geometry` is `[sets, ways, line_bytes]`, `model`
//! is `[cpi, miss_penalty]`, and the artifact object carries the
//! wire core an [`crpd::AnalyzedProgram`] can be rebuilt from. Both
//! directions are subject to [`MAX_SPEC_BYTES`].
//!
//! The `spec` payload is exactly the [`SystemSpec`] text format the
//! one-shot CLI reads from disk (`trisc wcrt system.spec`); `sources`
//! optionally maps a task's `FILE` field to inline assembly text so a
//! request can be self-contained. Files not found in `sources` are read
//! from the server's filesystem as a fallback.
//!
//! The `metrics` payload reports the staged artifact DAG alongside the
//! endpoint counters: `"stages"` maps each pipeline stage (`assemble`,
//! `analyze`, `crpd_cell`) to its `hits`/`misses`/`entries`/
//! `single_flight_waits`, and `"artifact_cache"` keeps the `analyze`
//! stage's counters under their historic name. `metrics_prom` exposes
//! the same data as `rtserver_stage_cache_*{stage="..."}` families.
//!
//! ## Admission control
//!
//! Analysis-class requests (`wcet`/`crpd`/`wcrt`/`sim`/`explore`/
//! `batch`) may carry an optional `deadline_ms` field overriding the
//! server's `--deadline-ms`: a request whose queue wait already exceeds
//! its deadline is answered `{"ok": false, "code":
//! "deadline_exceeded", ...}` *before* any analysis runs. When the
//! server's in-flight count crosses `--max-inflight`, new analysis
//! requests are shed with `{"ok": false, "code": "overloaded", ...}`;
//! ops-plane commands (ping, metrics, statusz, …) are never shed, so
//! the server stays observable under overload.
//!
//! ## Responses
//!
//! Success: `{"id": 1, "ok": true, "output": "..."}` (plus `"metrics"`
//! for the metrics command). Failure: `{"id": 1, "ok": false, "error":
//! "..."}`, with a machine-readable `"code"` field (`overloaded`,
//! `deadline_exceeded`, `payload_too_large`) on typed errors — the
//! last one whenever a `spec`+`sources` payload (top-level, per
//! `batch` item, or per peer frame) crosses [`MAX_SPEC_BYTES`]. The
//! `id` is echoed
//! verbatim when the request carried one, so clients may pipeline
//! requests over one connection.
//!
//! `explore` and `batch` are the *streaming* commands: they answer with
//! several NDJSON frames sharing the request's `id`. `explore` emits one
//! `{"ok": true, "event": "points", "points": [...]}` frame per
//! evaluated batch (each point carries `index`, `schedulable` and its
//! rendered `row`), then a final `{"ok": true, "event": "done",
//! "points_total": N, "front": [indices], "front_size": F,
//! "output": "..."}` frame whose `output` holds the explained Pareto
//! front. `batch` emits one `{"ok": ..., "event": "result", "index": k,
//! "output"/"error": ...}` frame per item, in item order, then a final
//! `{"ok": true, "event": "done", "results": N, "errors": E}` frame.
//! Clients read frames until they see `event == "done"` (or a frame with
//! `ok == false` and no `event`).
//!
//! [`SystemSpec`]: rtcli::SystemSpec

use std::collections::BTreeMap;
use std::fmt;

use crate::json::Json;

/// A request-parse failure: a human-readable message plus an optional
/// machine-readable code for typed failure classes (today only
/// [`CODE_PAYLOAD_TOO_LARGE`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Machine-readable class, when the failure has one.
    pub code: Option<&'static str>,
    /// Human-readable description.
    pub message: String,
}

impl ParseError {
    fn plain(message: impl Into<String>) -> ParseError {
        ParseError { code: None, message: message.into() }
    }

    fn too_large(message: String) -> ParseError {
        ParseError { code: Some(CODE_PAYLOAD_TOO_LARGE), message }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl From<String> for ParseError {
    fn from(message: String) -> ParseError {
        ParseError::plain(message)
    }
}

impl From<&str> for ParseError {
    fn from(message: &str) -> ParseError {
        ParseError::plain(message)
    }
}

/// The `code` value of responses rejecting a payload over
/// [`MAX_SPEC_BYTES`].
pub const CODE_PAYLOAD_TOO_LARGE: &str = "payload_too_large";

/// One parsed request frame.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Echoed back in the response if present.
    pub id: Option<u64>,
    /// What to do.
    pub cmd: Command,
    /// Per-request deadline override (milliseconds of queue wait after
    /// which the request is rejected instead of analyzed). Falls back to
    /// the server's `--deadline-ms`; only analysis-class commands check.
    pub deadline_ms: Option<u64>,
}

/// The request payload per command.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Liveness probe.
    Ping,
    /// Observability snapshot.
    Metrics,
    /// Observability snapshot in the Prometheus text exposition format.
    MetricsProm,
    /// Live ops snapshot from the flight recorder: uptime, inflight,
    /// per-endpoint quantiles, stage hit rates.
    Statusz,
    /// The last `n` flight records from the recorder's ring (newest
    /// [`FlightRecorder::capacity`] survive; default 32).
    ///
    /// [`FlightRecorder::capacity`]: rtobs::flight::FlightRecorder::capacity
    Journal {
        /// How many records to return (clamped to the ring capacity).
        n: Option<u64>,
    },
    /// The black-box buffer: full span trees of recent requests slower
    /// than `--slow-ms`.
    Flight,
    /// Stop accepting connections, drain in-flight work, exit.
    Shutdown,
    /// Per-task WCET reports for every task of the spec.
    Wcet(SpecPayload),
    /// The four reload bounds for a two-task spec (first = preempted,
    /// second = preempting).
    Crpd(SpecPayload),
    /// The WCRT table for the spec's task system.
    Wcrt(SpecPayload),
    /// Scheduler co-simulation of the spec's task system.
    Sim {
        /// The task system.
        payload: SpecPayload,
        /// Simulation horizon in cycles (default: the CLI's).
        horizon: Option<u64>,
    },
    /// Design-space sweep over the spec; streams per-batch point frames
    /// and a final Pareto-front frame.
    Explore {
        /// The base task system the grid perturbs.
        payload: SpecPayload,
        /// Grid-file text declaring the swept axes (the same format
        /// `trisc explore` reads from disk; any `spec` directive inside
        /// it is ignored — the base system is this request's `spec`).
        grid: String,
    },
    /// Many analysis specs in one round-trip: streams one `result` frame
    /// per item (in item order) and a final `done` frame.
    Batch {
        /// The analysis requests to execute (wcet/crpd/wcrt/sim only).
        items: Vec<Command>,
    },
    /// Cluster peer fetch: return (computing on miss, as the cluster-wide
    /// single-flight leader) the analyzed-program artifact for one task.
    PeerGet {
        /// Task name (half of the stage key).
        name: String,
        /// Assembly source text (the other half), so the owner can
        /// compute on a miss.
        source: String,
        /// `(sets, ways, line_bytes)` of the analysis geometry.
        geometry: (u32, u32, u32),
        /// `(cpi, miss_penalty)` of the timing model.
        model: (u64, u64),
    },
    /// Cluster peer push: offer an artifact this node computed as a
    /// fallback to its ring owner (best-effort; never overwrites).
    PeerPut {
        /// The artifact wire object, decoded by the cluster module.
        artifact: Json,
    },
}

impl Command {
    /// The metrics label for this command.
    pub fn endpoint(&self) -> &'static str {
        match self {
            Command::Ping => "ping",
            Command::Metrics => "metrics",
            Command::MetricsProm => "metrics_prom",
            Command::Statusz => "statusz",
            Command::Journal { .. } => "journal",
            Command::Flight => "flight",
            Command::Shutdown => "shutdown",
            Command::Wcet(_) => "wcet",
            Command::Crpd(_) => "crpd",
            Command::Wcrt(_) => "wcrt",
            Command::Sim { .. } => "sim",
            Command::Explore { .. } => "explore",
            Command::Batch { .. } => "batch",
            Command::PeerGet { .. } => "peer_get",
            Command::PeerPut { .. } => "peer_put",
        }
    }

    /// Whether this command runs analysis (and is therefore subject to
    /// shedding and deadlines), as opposed to the always-available ops
    /// plane. Peer frames count: `peer_get` computes on a miss and
    /// `peer_put` rebuilds the offered artifact, and shedding either is
    /// safe — the requesting peer falls back to local compute.
    pub fn is_analysis(&self) -> bool {
        matches!(
            self,
            Command::Wcet(_)
                | Command::Crpd(_)
                | Command::Wcrt(_)
                | Command::Sim { .. }
                | Command::Explore { .. }
                | Command::Batch { .. }
                | Command::PeerGet { .. }
                | Command::PeerPut { .. }
        )
    }
}

/// A system spec travelling over the wire, with optional inline sources.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SpecPayload {
    /// [`rtcli::SystemSpec`] text.
    pub spec: String,
    /// `FILE` field → assembly text. Tasks whose file is absent here fall
    /// back to the server's filesystem.
    pub sources: BTreeMap<String, String>,
}

impl Request {
    /// Parses one request line.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] for malformed JSON, a missing or unknown
    /// `cmd`, payload fields of the wrong type, or (typed with
    /// [`CODE_PAYLOAD_TOO_LARGE`]) a payload over [`MAX_SPEC_BYTES`].
    pub fn parse(line: &str) -> Result<Request, ParseError> {
        let doc = Json::parse(line).map_err(|e| ParseError::plain(e.to_string()))?;
        let id = match doc.get("id") {
            None | Some(Json::Null) => None,
            Some(v) => Some(v.as_u64().ok_or("`id` must be a non-negative integer")?),
        };
        let deadline_ms = match doc.get("deadline_ms") {
            None | Some(Json::Null) => None,
            Some(v) => Some(v.as_u64().ok_or("`deadline_ms` must be a non-negative integer")?),
        };
        let cmd = parse_command(&doc)?;
        Ok(Request { id, cmd, deadline_ms })
    }
}

fn parse_command(doc: &Json) -> Result<Command, ParseError> {
    let cmd_name = doc.get("cmd").and_then(Json::as_str).ok_or("missing string field `cmd`")?;
    let cmd = match cmd_name {
        "ping" => Command::Ping,
        "metrics" => Command::Metrics,
        "metrics_prom" => Command::MetricsProm,
        "statusz" => Command::Statusz,
        "journal" => {
            let n = match doc.get("n") {
                None | Some(Json::Null) => None,
                Some(v) => Some(v.as_u64().ok_or("`n` must be a non-negative integer")?),
            };
            Command::Journal { n }
        }
        "flight" => Command::Flight,
        "shutdown" => Command::Shutdown,
        "batch" => {
            let Some(Json::Arr(items)) = doc.get("items") else {
                return Err("missing array field `items`".into());
            };
            if items.is_empty() {
                return Err("`items` must not be empty".into());
            }
            if items.len() > MAX_BATCH_ITEMS {
                return Err(format!(
                    "batch of {} items exceeds the {MAX_BATCH_ITEMS}-item limit",
                    items.len()
                )
                .into());
            }
            let items = items
                .iter()
                .enumerate()
                .map(|(index, item)| {
                    // Each item runs through `spec_payload` and is
                    // therefore individually capped at MAX_SPEC_BYTES;
                    // prefix the item index but keep the typed code.
                    let cmd = parse_command(item).map_err(|e| ParseError {
                        code: e.code,
                        message: format!("item {index}: {}", e.message),
                    })?;
                    if !matches!(
                        cmd,
                        Command::Wcet(_) | Command::Crpd(_) | Command::Wcrt(_) | Command::Sim { .. }
                    ) {
                        return Err(ParseError::plain(format!(
                            "item {index}: cmd `{}` is not batchable (expected wcet|crpd|wcrt|sim)",
                            cmd.endpoint()
                        )));
                    }
                    Ok(cmd)
                })
                .collect::<Result<Vec<Command>, ParseError>>()?;
            Command::Batch { items }
        }
        "wcet" => Command::Wcet(spec_payload(doc)?),
        "crpd" => Command::Crpd(spec_payload(doc)?),
        "wcrt" => Command::Wcrt(spec_payload(doc)?),
        "sim" => {
            let horizon = match doc.get("horizon") {
                None | Some(Json::Null) => None,
                Some(v) => Some(v.as_u64().ok_or("`horizon` must be a non-negative integer")?),
            };
            Command::Sim { payload: spec_payload(doc)?, horizon }
        }
        "explore" => {
            let grid = doc
                .get("grid")
                .and_then(Json::as_str)
                .ok_or("missing string field `grid`")?
                .to_string();
            Command::Explore { payload: spec_payload(doc)?, grid }
        }
        "peer_get" => {
            let name = doc
                .get("name")
                .and_then(Json::as_str)
                .ok_or("missing string field `name`")?
                .to_string();
            let source = doc
                .get("source")
                .and_then(Json::as_str)
                .ok_or("missing string field `source`")?
                .to_string();
            let total = name.len() + source.len();
            if total > MAX_SPEC_BYTES {
                return Err(ParseError::too_large(format!(
                    "peer_get payload of {total} bytes exceeds the {MAX_SPEC_BYTES}-byte limit"
                )));
            }
            Command::PeerGet {
                name,
                source,
                geometry: geometry_triple(doc)?,
                model: model_pair(doc)?,
            }
        }
        "peer_put" => {
            let artifact =
                doc.get("artifact").cloned().ok_or("missing object field `artifact`")?;
            if !matches!(artifact, Json::Obj(_)) {
                return Err("`artifact` must be an object".into());
            }
            let encoded = artifact.encode().len();
            if encoded > MAX_SPEC_BYTES {
                return Err(ParseError::too_large(format!(
                    "peer_put artifact of {encoded} bytes exceeds the {MAX_SPEC_BYTES}-byte limit"
                )));
            }
            Command::PeerPut { artifact }
        }
        other => {
            return Err(format!(
                "unknown cmd `{other}` (expected ping|wcet|crpd|wcrt|sim|explore|batch|peer_get|peer_put|metrics|metrics_prom|statusz|journal|flight|shutdown)"
            )
            .into())
        }
    };
    Ok(cmd)
}

/// Parses the `[sets, ways, line_bytes]` geometry triple of a peer frame.
fn geometry_triple(doc: &Json) -> Result<(u32, u32, u32), ParseError> {
    let err = "`geometry` must be [sets, ways, line_bytes]";
    let Some(Json::Arr(parts)) = doc.get("geometry") else { return Err(err.into()) };
    let [sets, ways, line] = parts.as_slice() else { return Err(err.into()) };
    let field = |v: &Json| -> Result<u32, ParseError> {
        v.as_u64().and_then(|n| u32::try_from(n).ok()).ok_or_else(|| err.into())
    };
    Ok((field(sets)?, field(ways)?, field(line)?))
}

/// Parses the `[cpi, miss_penalty]` model pair of a peer frame.
fn model_pair(doc: &Json) -> Result<(u64, u64), ParseError> {
    let err = "`model` must be [cpi, miss_penalty]";
    let Some(Json::Arr(parts)) = doc.get("model") else { return Err(err.into()) };
    let [cpi, miss] = parts.as_slice() else { return Err(err.into()) };
    let field = |v: &Json| -> Result<u64, ParseError> { v.as_u64().ok_or_else(|| err.into()) };
    Ok((field(cpi)?, field(miss)?))
}

/// Upper bound on the combined `spec` + `sources` payload of one
/// request. Typed rejection (instead of letting a multi-megabyte spec
/// reach the assembler) keeps one hostile or buggy client from pinning
/// a worker on parse work.
pub const MAX_SPEC_BYTES: usize = 1 << 20;

/// Upper bound on the items of one `batch` request (the per-item
/// [`MAX_SPEC_BYTES`] cap still applies to each item individually).
pub const MAX_BATCH_ITEMS: usize = 64;

fn spec_payload(doc: &Json) -> Result<SpecPayload, ParseError> {
    let spec =
        doc.get("spec").and_then(Json::as_str).ok_or("missing string field `spec`")?.to_string();
    let mut sources = BTreeMap::new();
    let mut total = spec.len();
    match doc.get("sources") {
        None | Some(Json::Null) => {}
        Some(Json::Obj(map)) => {
            for (file, text) in map {
                let text = text.as_str().ok_or_else(|| {
                    ParseError::plain(format!("source `{file}` must be a string"))
                })?;
                total += file.len() + text.len();
                sources.insert(file.clone(), text.to_string());
            }
        }
        Some(_) => return Err("`sources` must be an object of strings".into()),
    }
    if total > MAX_SPEC_BYTES {
        return Err(ParseError::too_large(format!(
            "spec payload of {total} bytes exceeds the {MAX_SPEC_BYTES}-byte limit"
        )));
    }
    Ok(SpecPayload { spec, sources })
}

fn id_json(id: Option<u64>) -> Json {
    id.map_or(Json::Null, Json::from)
}

/// Encodes a success response carrying output text.
pub fn ok_response(id: Option<u64>, output: &str) -> String {
    Json::obj([("id", id_json(id)), ("ok", Json::Bool(true)), ("output", Json::from(output))])
        .encode()
}

/// Encodes a success response carrying a structured payload under `key`.
pub fn ok_response_with(id: Option<u64>, key: &str, value: Json) -> String {
    Json::obj([("id", id_json(id)), ("ok", Json::Bool(true)), (key, value)]).encode()
}

/// Encodes a failure response.
pub fn err_response(id: Option<u64>, error: &str) -> String {
    Json::obj([("id", id_json(id)), ("ok", Json::Bool(false)), ("error", Json::from(error))])
        .encode()
}

/// Encodes a typed failure response with a machine-readable `code`
/// (`overloaded`, `deadline_exceeded`) alongside the human message.
pub fn err_response_coded(id: Option<u64>, code: &str, error: &str) -> String {
    Json::obj([
        ("id", id_json(id)),
        ("ok", Json::Bool(false)),
        ("code", Json::from(code)),
        ("error", Json::from(error)),
    ])
    .encode()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_each_command() {
        let r = Request::parse(r#"{"id":3,"cmd":"ping"}"#).unwrap();
        assert_eq!(r.id, Some(3));
        assert_eq!(r.cmd, Command::Ping);
        assert_eq!(r.cmd.endpoint(), "ping");

        let r = Request::parse(
            r#"{"cmd":"wcrt","spec":"task a a.s 1 1\n","sources":{"a.s":"halt\n"}}"#,
        )
        .unwrap();
        assert_eq!(r.id, None);
        let Command::Wcrt(p) = r.cmd else { panic!("expected wcrt") };
        assert_eq!(p.spec, "task a a.s 1 1\n");
        assert_eq!(p.sources.get("a.s").map(String::as_str), Some("halt\n"));

        let r = Request::parse(r#"{"cmd":"sim","spec":"s","horizon":4096}"#).unwrap();
        let Command::Sim { horizon, .. } = r.cmd else { panic!("expected sim") };
        assert_eq!(horizon, Some(4096));

        let r = Request::parse(r#"{"cmd":"metrics_prom"}"#).unwrap();
        assert_eq!(r.cmd, Command::MetricsProm);
        assert_eq!(r.cmd.endpoint(), "metrics_prom");

        let r = Request::parse(r#"{"cmd":"statusz"}"#).unwrap();
        assert_eq!(r.cmd, Command::Statusz);
        assert_eq!(r.cmd.endpoint(), "statusz");

        let r = Request::parse(r#"{"cmd":"journal","n":5}"#).unwrap();
        assert_eq!(r.cmd, Command::Journal { n: Some(5) });
        assert_eq!(r.cmd.endpoint(), "journal");
        let r = Request::parse(r#"{"cmd":"journal"}"#).unwrap();
        assert_eq!(r.cmd, Command::Journal { n: None });

        let r = Request::parse(r#"{"cmd":"flight"}"#).unwrap();
        assert_eq!(r.cmd, Command::Flight);
        assert_eq!(r.cmd.endpoint(), "flight");

        let r = Request::parse(r#"{"cmd":"explore","spec":"s","grid":"sets 32 64\n"}"#).unwrap();
        assert_eq!(r.cmd.endpoint(), "explore");
        assert!(r.cmd.is_analysis());
        assert_eq!(r.deadline_ms, None);
        let Command::Explore { payload, grid } = r.cmd else { panic!("expected explore") };
        assert_eq!(payload.spec, "s");
        assert_eq!(grid, "sets 32 64\n");

        let r = Request::parse(
            r#"{"id":7,"cmd":"batch","deadline_ms":250,"items":[{"cmd":"wcet","spec":"a"},{"cmd":"sim","spec":"b","horizon":9}]}"#,
        )
        .unwrap();
        assert_eq!(r.id, Some(7));
        assert_eq!(r.deadline_ms, Some(250));
        assert_eq!(r.cmd.endpoint(), "batch");
        assert!(r.cmd.is_analysis());
        let Command::Batch { items } = r.cmd else { panic!("expected batch") };
        assert_eq!(items.len(), 2);
        assert_eq!(items[0].endpoint(), "wcet");
        let Command::Sim { horizon, .. } = &items[1] else { panic!("expected sim item") };
        assert_eq!(*horizon, Some(9));

        assert!(!Command::Ping.is_analysis());
        assert!(!Command::Statusz.is_analysis());
    }

    #[test]
    fn rejects_malformed_requests() {
        for (line, needle) in [
            ("{", "invalid json"),
            (r#"{"cmd":"frobnicate"}"#, "unknown cmd"),
            (r#"{"id":"x","cmd":"ping"}"#, "`id`"),
            (r#"{"cmd":"wcrt"}"#, "`spec`"),
            (r#"{"cmd":"wcrt","spec":"s","sources":[1]}"#, "`sources`"),
            (r#"{"cmd":"wcrt","spec":"s","sources":{"a.s":7}}"#, "a.s"),
            (r#"{"cmd":"sim","spec":"s","horizon":-1}"#, "`horizon`"),
            (r#"{"cmd":"journal","n":-3}"#, "`n`"),
            (r#"{"cmd":"explore","spec":"s"}"#, "`grid`"),
            (r#"{"cmd":"explore","grid":"g"}"#, "`spec`"),
            (r#"{"spec":"s"}"#, "`cmd`"),
            (r#"{"cmd":"ping","deadline_ms":-1}"#, "`deadline_ms`"),
            (r#"{"cmd":"batch"}"#, "`items`"),
            (r#"{"cmd":"batch","items":[]}"#, "empty"),
            (r#"{"cmd":"batch","items":[{"cmd":"ping"}]}"#, "not batchable"),
            (r#"{"cmd":"batch","items":[{"cmd":"wcet","spec":"s"},{"spec":"x"}]}"#, "item 1"),
        ] {
            let err = Request::parse(line).unwrap_err();
            assert!(err.message.contains(needle), "{line}: {err}");
            assert_eq!(err.code, None, "{line} should not carry a typed code");
        }
    }

    #[test]
    fn rejects_oversized_spec_payloads() {
        let big = "x".repeat(MAX_SPEC_BYTES + 1);
        let line = format!(r#"{{"cmd":"wcrt","spec":"{big}"}}"#);
        let err = Request::parse(&line).unwrap_err();
        assert!(err.message.contains("exceeds"), "{err}");
        assert_eq!(err.code, Some(CODE_PAYLOAD_TOO_LARGE));

        // The limit covers spec + sources combined, and sits just above
        // the boundary: an exactly-at-limit payload is accepted.
        let spec = "task a a.s 1 1\n";
        let source = "y".repeat(MAX_SPEC_BYTES);
        let line = format!(r#"{{"cmd":"wcet","spec":"{spec}","sources":{{"a.s":"{source}"}}}}"#);
        let err = Request::parse(&line.replace('\n', "\\n")).unwrap_err();
        assert!(err.message.contains("exceeds"), "{err}");
        assert_eq!(err.code, Some(CODE_PAYLOAD_TOO_LARGE));

        let ok = format!(r#"{{"cmd":"wcrt","spec":"{}"}}"#, "z".repeat(MAX_SPEC_BYTES));
        assert!(Request::parse(&ok).is_ok());
    }

    #[test]
    fn oversized_batch_item_is_typed_and_indexed() {
        // The cap applies to each batch item individually, not just the
        // top-level line, and the typed code survives the item prefix.
        let big = "x".repeat(MAX_SPEC_BYTES + 1);
        let line = format!(
            r#"{{"cmd":"batch","items":[{{"cmd":"wcet","spec":"ok"}},{{"cmd":"wcrt","spec":"{big}"}}]}}"#
        );
        let err = Request::parse(&line).unwrap_err();
        assert!(err.message.contains("item 1"), "{err}");
        assert!(err.message.contains("exceeds"), "{err}");
        assert_eq!(err.code, Some(CODE_PAYLOAD_TOO_LARGE));
    }

    #[test]
    fn parses_peer_frames() {
        let r = Request::parse(
            r#"{"id":9,"cmd":"peer_get","name":"a","source":"halt\n","geometry":[64,2,16],"model":[1,20]}"#,
        )
        .unwrap();
        assert_eq!(r.cmd.endpoint(), "peer_get");
        assert!(r.cmd.is_analysis());
        let Command::PeerGet { name, source, geometry, model } = r.cmd else {
            panic!("expected peer_get")
        };
        assert_eq!(name, "a");
        assert_eq!(source, "halt\n");
        assert_eq!(geometry, (64, 2, 16));
        assert_eq!(model, (1, 20));

        let r = Request::parse(r#"{"cmd":"peer_put","artifact":{"name":"a"}}"#).unwrap();
        assert_eq!(r.cmd.endpoint(), "peer_put");
        assert!(r.cmd.is_analysis());

        for (line, needle) in [
            (r#"{"cmd":"peer_get","source":"s","geometry":[1,1,4],"model":[1,1]}"#, "`name`"),
            (r#"{"cmd":"peer_get","name":"a","geometry":[1,1,4],"model":[1,1]}"#, "`source`"),
            (r#"{"cmd":"peer_get","name":"a","source":"s","model":[1,1]}"#, "`geometry`"),
            (
                r#"{"cmd":"peer_get","name":"a","source":"s","geometry":[1,1],"model":[1,1]}"#,
                "`geometry`",
            ),
            (r#"{"cmd":"peer_get","name":"a","source":"s","geometry":[1,1,4]}"#, "`model`"),
            (r#"{"cmd":"peer_put"}"#, "`artifact`"),
            (r#"{"cmd":"peer_put","artifact":[1]}"#, "`artifact`"),
        ] {
            let err = Request::parse(line).unwrap_err();
            assert!(err.message.contains(needle), "{line}: {err}");
        }

        // Oversized peer frames carry the typed code in both directions.
        let big = "s".repeat(MAX_SPEC_BYTES + 1);
        let line = format!(
            r#"{{"cmd":"peer_get","name":"a","source":"{big}","geometry":[1,1,4],"model":[1,1]}}"#
        );
        let err = Request::parse(&line).unwrap_err();
        assert_eq!(err.code, Some(CODE_PAYLOAD_TOO_LARGE), "{err}");
        let line = format!(r#"{{"cmd":"peer_put","artifact":{{"blob":"{big}"}}}}"#);
        let err = Request::parse(&line).unwrap_err();
        assert_eq!(err.code, Some(CODE_PAYLOAD_TOO_LARGE), "{err}");
    }

    #[test]
    fn responses_are_single_line_json() {
        let ok = ok_response(Some(1), "two\nlines\n");
        assert!(!ok.contains('\n'));
        let doc = Json::parse(&ok).unwrap();
        assert_eq!(doc.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(doc.get("output").unwrap().as_str(), Some("two\nlines\n"));

        let err = err_response(None, "boom");
        let doc = Json::parse(&err).unwrap();
        assert_eq!(doc.get("ok").unwrap().as_bool(), Some(false));
        assert_eq!(doc.get("id"), Some(&Json::Null));

        let shed = err_response_coded(Some(4), "overloaded", "server at capacity");
        let doc = Json::parse(&shed).unwrap();
        assert_eq!(doc.get("ok").unwrap().as_bool(), Some(false));
        assert_eq!(doc.get("code").unwrap().as_str(), Some("overloaded"));
        assert_eq!(doc.get("id").unwrap().as_u64(), Some(4));
    }

    #[test]
    fn rejects_oversized_batches() {
        let item = r#"{"cmd":"wcet","spec":"s"}"#;
        let items = vec![item; MAX_BATCH_ITEMS + 1].join(",");
        let err = Request::parse(&format!(r#"{{"cmd":"batch","items":[{items}]}}"#)).unwrap_err();
        assert!(err.message.contains("65 items exceeds"), "{err}");
        let items = vec![item; MAX_BATCH_ITEMS].join(",");
        assert!(Request::parse(&format!(r#"{{"cmd":"batch","items":[{items}]}}"#)).is_ok());
    }
}
