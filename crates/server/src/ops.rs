//! `trisc status`: a human-readable terminal view over a live daemon's
//! `statusz` and `journal` endpoints.
//!
//! The network half is a thin NDJSON client ([`fetch_status`]); the
//! rendering half ([`render_status`]) is a pure function over the two
//! JSON payloads, so the whole report is unit-testable without a server.

use std::fmt::Write as _;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;

use rtcli::{CliError, StatusOptions};

use crate::json::Json;

/// Connects to a running daemon and returns its `statusz` and `journal`
/// payloads.
///
/// # Errors
///
/// Returns [`CliError::Io`] for connection/protocol failures and the
/// server's own message for an error response.
pub fn fetch_status(opts: &StatusOptions) -> Result<(Json, Json), CliError> {
    let addr = format!("{}:{}", opts.host, opts.port);
    let stream = TcpStream::connect(&addr).map_err(|e| CliError::Io(format!("{addr}: {e}")))?;
    let mut writer = BufWriter::new(stream.try_clone().map_err(|e| CliError::Io(e.to_string()))?);
    let mut reader = BufReader::new(stream);
    let mut ask = |line: String, key: &str| -> Result<Json, CliError> {
        writeln!(writer, "{line}")
            .and_then(|()| writer.flush())
            .map_err(|e| CliError::Io(format!("{addr}: {e}")))?;
        let mut response = String::new();
        reader.read_line(&mut response).map_err(|e| CliError::Io(format!("{addr}: {e}")))?;
        let doc =
            Json::parse(response.trim_end()).map_err(|e| CliError::Io(format!("{addr}: {e}")))?;
        if doc.get("ok").and_then(Json::as_bool) != Some(true) {
            let message = doc.get("error").and_then(Json::as_str).unwrap_or("unknown error");
            return Err(CliError::Io(format!("{addr}: server error: {message}")));
        }
        doc.get(key)
            .cloned()
            .ok_or_else(|| CliError::Io(format!("{addr}: response missing `{key}`")))
    };
    let status = ask(r#"{"cmd":"statusz"}"#.to_string(), "status")?;
    let journal = ask(format!(r#"{{"cmd":"journal","n":{}}}"#, opts.journal), "journal")?;
    Ok((status, journal))
}

fn num(doc: &Json, key: &str) -> u64 {
    doc.get(key).and_then(Json::as_u64).unwrap_or(0)
}

/// Formats microseconds compactly: `850us`, `12.3ms`, `4.56s`.
fn fmt_us(us: u64) -> String {
    if us < 1_000 {
        format!("{us}us")
    } else if us < 1_000_000 {
        format!("{:.1}ms", us as f64 / 1_000.0)
    } else {
        format!("{:.2}s", us as f64 / 1_000_000.0)
    }
}

/// Renders the `trisc status` report from the two endpoint payloads.
pub fn render_status(status: &Json, journal: &Json) -> String {
    let mut out = String::new();
    let slow = match status.get("slow_ms").and_then(Json::as_u64) {
        Some(ms) => format!("slow capture >= {ms} ms ({} captured)", num(status, "slow_captures")),
        None => "slow capture off".to_string(),
    };
    let cap = match status.get("max_inflight").and_then(Json::as_u64) {
        Some(cap) => cap.to_string(),
        None => "?".to_string(),
    };
    let _ = writeln!(
        out,
        "rtserver up {}s | inflight {}/{cap} | conns {} | shed {} | {} flights recorded (ring {}) | {slow}",
        num(status, "uptime_secs"),
        num(status, "inflight"),
        num(status, "open_connections"),
        num(status, "shed_total"),
        num(status, "records_total"),
        num(status, "flight_capacity"),
    );
    if let Some(Json::Obj(endpoints)) = status.get("endpoints") {
        let _ = writeln!(
            out,
            "  {:>12} {:>8} {:>6} {:>7} {:>6} {:>9} {:>9} {:>9} {:>9}",
            "endpoint", "count", "err", "dl_miss", "shed", "p50", "p90", "p99", "max"
        );
        for (name, e) in endpoints {
            let _ = writeln!(
                out,
                "  {:>12} {:>8} {:>6} {:>7} {:>6} {:>9} {:>9} {:>9} {:>9}",
                name,
                num(e, "count"),
                num(e, "errors"),
                num(e, "deadline_misses"),
                num(e, "shed"),
                fmt_us(num(e, "p50_us")),
                fmt_us(num(e, "p90_us")),
                fmt_us(num(e, "p99_us")),
                fmt_us(num(e, "max_us")),
            );
        }
    }
    if let Some(peer) = status.get("peer") {
        // The peer line only matters in cluster mode: a single-node
        // server ("single") with no fetch traffic keeps the report tidy.
        let ring_self = peer.get("ring_self").cloned().unwrap_or(Json::Null);
        let clustered = !matches!(ring_self, Json::Str(ref s) if s == "single");
        if clustered {
            let role = match &ring_self {
                Json::Str(s) => s.clone(),
                other => format!("node {}", other.as_u64().unwrap_or(0)),
            };
            let _ = writeln!(
                out,
                "  cluster: {role}/{} nodes | peer fetch {} hit {} miss {} timeout | \
                 {} fallbacks | {} puts | owns {} keys",
                num(peer, "ring_nodes"),
                num(peer, "fetch_hits"),
                num(peer, "fetch_misses"),
                num(peer, "fetch_timeouts"),
                num(peer, "fallbacks"),
                num(peer, "puts"),
                num(peer, "ring_owned_keys"),
            );
        }
    }
    if let Some(Json::Obj(stages)) = status.get("stage_cache") {
        let parts: Vec<String> = stages
            .iter()
            .map(|(stage, s)| {
                let hits = num(s, "hits");
                let misses = num(s, "misses");
                let rate = match s.get("hit_rate") {
                    Some(Json::Num(r)) => format!("{:.0}%", r * 100.0),
                    _ => "-".to_string(),
                };
                format!("{stage} {hits}/{} ({rate})", hits + misses)
            })
            .collect();
        let _ = writeln!(out, "  stage cache hits: {}", parts.join(", "));
    }
    if let Some(Json::Obj(stage_ns)) = status.get("stage_ns") {
        if !stage_ns.is_empty() {
            let mut pairs: Vec<(&String, u64)> =
                stage_ns.iter().map(|(k, v)| (k, v.as_u64().unwrap_or(0))).collect();
            pairs.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
            let parts: Vec<String> =
                pairs.iter().map(|(stage, ns)| format!("{stage} {}", fmt_us(ns / 1_000))).collect();
            let _ = writeln!(out, "  stage wall time: {}", parts.join(", "));
        }
    }
    if let Json::Arr(records) = journal {
        if !records.is_empty() {
            let _ = writeln!(out, "recent flights (oldest first):");
        }
        for r in records {
            let ok = if r.get("ok").and_then(Json::as_bool) == Some(true) { "ok" } else { "ERR" };
            let queue = num(r, "queue_us");
            let queue = if queue > 0 { format!(" queue {}", fmt_us(queue)) } else { String::new() };
            let _ = writeln!(
                out,
                "  #{:<6} {:>12} {:>9} {}{queue}",
                num(r, "id"),
                r.get("endpoint").and_then(Json::as_str).unwrap_or("?"),
                fmt_us(num(r, "total_us")),
                ok,
            );
        }
    }
    out
}

/// The `trisc status` entry point: fetch, render, return the report.
///
/// # Errors
///
/// Returns [`CliError::Io`] when the daemon is unreachable or replies
/// with an error.
pub fn run_status(opts: &StatusOptions) -> Result<String, CliError> {
    let (status, journal) = fetch_status(opts)?;
    Ok(render_status(&status, &journal))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_endpoints_stages_and_journal() {
        let status = Json::parse(
            r#"{"uptime_secs":12,"inflight":1,"max_inflight":256,"open_connections":7,
                "shed_total":3,"records_total":40,"flight_capacity":512,
                "slow_ms":250,"slow_captures":2,
                "endpoints":{"wcrt":{"count":30,"errors":1,"deadline_misses":2,"shed":3,
                                      "p50_us":8191,"p90_us":16383,
                                      "p99_us":32767,"max_us":30000},
                             "ping":{"count":10,"errors":0,"deadline_misses":0,"shed":0,
                                      "p50_us":63,"p90_us":63,
                                      "p99_us":127,"max_us":90}},
                "stage_ns":{"wcrt":5000000,"crpd":2000000},
                "stage_cache":{"analyze":{"hits":6,"misses":2,"hit_rate":0.75}}}"#,
        )
        .unwrap();
        let journal = Json::parse(
            r#"[{"id":38,"endpoint":"wcrt","total_us":12500,"ok":true,"queue_us":150},
                {"id":39,"endpoint":"ping","total_us":80,"ok":false,"queue_us":0}]"#,
        )
        .unwrap();
        let out = render_status(&status, &journal);
        assert!(out.contains("up 12s"), "{out}");
        assert!(out.contains("inflight 1/256"), "{out}");
        assert!(out.contains("conns 7"), "{out}");
        assert!(out.contains("shed 3"), "{out}");
        assert!(out.contains("dl_miss"), "{out}");
        assert!(out.contains("slow capture >= 250 ms (2 captured)"), "{out}");
        assert!(out.contains("wcrt"), "{out}");
        assert!(out.contains("8.2ms"), "p50 rendered in ms: {out}");
        assert!(out.contains("analyze 6/8 (75%)"), "{out}");
        assert!(out.contains("stage wall time: wcrt 5.0ms, crpd 2.0ms"), "{out}");
        assert!(out.contains("#38"), "{out}");
        assert!(out.contains("queue 150us"), "{out}");
        assert!(out.contains("ERR"), "{out}");
    }

    #[test]
    fn renders_the_cluster_line_only_in_cluster_mode() {
        let base = r#"{"uptime_secs":1,"inflight":0,"records_total":0,"flight_capacity":512,
                "slow_ms":null,"slow_captures":0,"endpoints":{},"stage_ns":{},
                "stage_cache":{},"peer":PEER}"#;
        let member = base.replace(
            "PEER",
            r#"{"fetch_hits":9,"fetch_misses":1,"fetch_timeouts":2,"fallbacks":3,
                "puts":3,"ring_owned_keys":17,"ring_nodes":3,"ring_self":1}"#,
        );
        let out = render_status(&Json::parse(&member).unwrap(), &Json::Arr(vec![]));
        assert!(
            out.contains(
                "cluster: node 1/3 nodes | peer fetch 9 hit 1 miss 2 timeout | \
                 3 fallbacks | 3 puts | owns 17 keys"
            ),
            "{out}"
        );
        let front = base.replace(
            "PEER",
            r#"{"fetch_hits":5,"fetch_misses":0,"fetch_timeouts":0,"fallbacks":0,
                "puts":0,"ring_owned_keys":0,"ring_nodes":3,"ring_self":"front"}"#,
        );
        let out = render_status(&Json::parse(&front).unwrap(), &Json::Arr(vec![]));
        assert!(out.contains("cluster: front/3 nodes"), "{out}");
        let single = base.replace(
            "PEER",
            r#"{"fetch_hits":0,"fetch_misses":0,"fetch_timeouts":0,"fallbacks":0,
                "puts":0,"ring_owned_keys":4,"ring_nodes":1,"ring_self":"single"}"#,
        );
        let out = render_status(&Json::parse(&single).unwrap(), &Json::Arr(vec![]));
        assert!(!out.contains("cluster:"), "single-node reports stay unchanged: {out}");
    }

    #[test]
    fn renders_an_idle_server_without_panicking() {
        let status = Json::parse(
            r#"{"uptime_secs":0,"inflight":0,"records_total":0,"flight_capacity":512,
                "slow_ms":null,"slow_captures":0,"endpoints":{},"stage_ns":{},
                "stage_cache":{}}"#,
        )
        .unwrap();
        let out = render_status(&status, &Json::Arr(vec![]));
        assert!(out.contains("slow capture off"), "{out}");
        assert!(out.contains("inflight 0/?"), "missing admission fields render `?`: {out}");
        assert!(!out.contains("recent flights"), "{out}");
    }

    #[test]
    fn fmt_us_picks_sensible_units() {
        assert_eq!(fmt_us(850), "850us");
        assert_eq!(fmt_us(12_300), "12.3ms");
        assert_eq!(fmt_us(4_560_000), "4.56s");
    }
}
