//! Cluster mode: sharding the `analyze` stage across nodes.
//!
//! ## Topology
//!
//! A cluster is a static list of node addresses (one `host:port` per
//! line of a peers file); every node loads the same file, builds the
//! same [`rtring::Ring`] over it and therefore computes identical
//! ownership for every [`AnalysisKey`]. A node started with
//! `--node-id N` *is* line `N` and owns its ring share; one started
//! with `--front` is a stateless member of nothing — it routes every
//! key to its owner, which makes it a fan-out/join tier for multi-task
//! specs and explore grids.
//!
//! ## Peer fetch protocol
//!
//! A non-owner needing an artifact sends the owner one `peer_get` frame
//! (name, source, geometry, model) over a reused [`rtreact::PeerClient`]
//! connection. The owner answers with the artifact's *wire core* —
//! name, WCET, fingerprint, and per-path classified access sequences —
//! from which [`AnalyzedProgram::from_parts`] deterministically rebuilds
//! the full artifact (CIIPs, packed footprints, skylines). The owner
//! computes on a miss, so the owner's `StageStore` single-flight
//! extends cluster-wide: however many nodes need a key at once, the
//! stage runs exactly once, on the owner.
//!
//! ## Failure and fallback
//!
//! Peer fetch is bounded by `--peer-deadline-ms`. On timeout, connect
//! failure, an error response or a decode mismatch, the requester
//! *falls back to local compute* — a dead peer costs latency, never
//! correctness — and best-effort `peer_put`s the result to the owner so
//! the cluster converges. The fallback matrix:
//!
//! | failure                      | counter    | outcome                     |
//! |------------------------------|------------|-----------------------------|
//! | owner answers with artifact  | `hits`     | replica cached locally      |
//! | owner errors / decode fails  | `misses`   | local compute + `peer_put`  |
//! | deadline / connect failure   | `timeouts` | local compute + `peer_put`  |
//!
//! `fallbacks() == misses() + timeouts()` is the number of local
//! recomputes this node performed for keys it does not own; the
//! cluster-wide recompute count is `Σ analyze-stage misses + Σ
//! fallbacks`, which the bench gates against the single-node miss
//! count.

use std::io::ErrorKind;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use crpd::AnalyzedProgram;
use rtcache::{CacheGeometry, MemoryBlock};
use rtreact::PeerClient;
use rtwcet::TimingModel;

use crate::json::Json;
use crate::proto::{ok_response_with, MAX_SPEC_BYTES};
use crate::store::AnalysisKey;

/// Parallel connections kept per peer: concurrent fetches to one owner
/// beyond this serialize on the last slot's mutex.
const CLIENTS_PER_PEER: usize = 4;

/// Frame cap for peer responses; matches the serving reactor's default
/// `max_line_bytes`.
const PEER_MAX_LINE: usize = 8 << 20;

/// How this node participates in a cluster.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Ring member addresses, in peers-file order.
    pub peers: Vec<String>,
    /// This node's index into `peers`, or `None` for a stateless front.
    pub self_index: Option<usize>,
    /// Deadline on each peer fetch round-trip.
    pub peer_deadline: Duration,
}

/// Parses a peers file: one `host:port` per line, `#` comments and
/// blank lines ignored.
///
/// # Errors
///
/// Returns a message if no address survives filtering or a line
/// contains whitespace (a likely formatting mistake).
pub fn parse_peers(text: &str) -> Result<Vec<String>, String> {
    let mut peers = Vec::new();
    for (number, line) in text.lines().enumerate() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if line.contains(char::is_whitespace) {
            return Err(format!(
                "peers file line {}: unexpected whitespace in `{line}`",
                number + 1
            ));
        }
        peers.push(line.to_string());
    }
    if peers.is_empty() {
        return Err("peers file declares no addresses".to_string());
    }
    Ok(peers)
}

/// Monotonic peer-fetch counters (see the module-level fallback matrix).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PeerStats {
    /// Fetches answered with an artifact by the owner.
    pub hits: u64,
    /// Owner reachable but unhelpful (error response, decode mismatch).
    pub misses: u64,
    /// Deadline expired or the owner was unreachable.
    pub timeouts: u64,
    /// Best-effort `peer_put` pushes that the owner acknowledged.
    pub puts: u64,
}

impl PeerStats {
    /// Local recomputes of keys this node does not own.
    pub fn fallbacks(&self) -> u64 {
        self.misses + self.timeouts
    }
}

/// Why a peer fetch failed (drives the counter split and is logged by
/// the replica path).
#[derive(Debug)]
pub enum FetchError {
    /// The deadline expired or the owner was unreachable.
    Timeout(String),
    /// The owner answered, but not with a usable artifact.
    Rejected(String),
}

impl std::fmt::Display for FetchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FetchError::Timeout(m) => write!(f, "peer timeout: {m}"),
            FetchError::Rejected(m) => write!(f, "peer rejected: {m}"),
        }
    }
}

/// One peer's reusable connection slots.
#[derive(Debug)]
struct PeerHandle {
    clients: Vec<Mutex<PeerClient>>,
}

/// The cluster state a node (or front) routes through.
#[derive(Debug)]
pub struct Cluster {
    ring: rtring::Ring,
    self_index: Option<usize>,
    peers: Vec<PeerHandle>,
    hits: AtomicU64,
    misses: AtomicU64,
    timeouts: AtomicU64,
    puts: AtomicU64,
}

impl Cluster {
    /// Builds the ring and per-peer connection slots.
    ///
    /// # Panics
    ///
    /// Panics if `self_index` is out of range (the CLI validates first).
    pub fn new(config: &ClusterConfig) -> Cluster {
        if let Some(index) = config.self_index {
            assert!(index < config.peers.len(), "--node-id {index} out of range");
        }
        let connect = config.peer_deadline.min(Duration::from_secs(1));
        let peers = config
            .peers
            .iter()
            .map(|addr| PeerHandle {
                clients: (0..CLIENTS_PER_PEER)
                    .map(|_| {
                        Mutex::new(PeerClient::new(
                            addr.clone(),
                            connect,
                            config.peer_deadline,
                            PEER_MAX_LINE,
                        ))
                    })
                    .collect(),
            })
            .collect();
        Cluster {
            ring: rtring::Ring::new(&config.peers),
            self_index: config.self_index,
            peers,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
            puts: AtomicU64::new(0),
        }
    }

    /// The consistent-hash ring over the member addresses.
    pub fn ring(&self) -> &rtring::Ring {
        &self.ring
    }

    /// This node's ring index (`None` for a front).
    pub fn self_index(&self) -> Option<usize> {
        self.self_index
    }

    /// True when this node is a stateless front (owns nothing).
    pub fn is_front(&self) -> bool {
        self.self_index.is_none()
    }

    /// Whether this node owns `route` (a [`route_key`] value). A front
    /// owns nothing.
    ///
    /// [`route_key`]: crate::store::route_key
    pub fn owns(&self, route: u128) -> bool {
        self.self_index == Some(self.ring.owner(route))
    }

    /// The owning member's address for `route`.
    pub fn owner_addr(&self, route: u128) -> &str {
        self.ring.owner_name(route)
    }

    /// Current counters.
    pub fn stats(&self) -> PeerStats {
        PeerStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            puts: self.puts.load(Ordering::Relaxed),
        }
    }

    /// Fetches the artifact for `key` from its owner, rebuilding it from
    /// the wire core and validating it against the request.
    ///
    /// # Errors
    ///
    /// [`FetchError::Timeout`] for deadline/connectivity failures,
    /// [`FetchError::Rejected`] when the owner answered without a usable
    /// artifact. Either way the caller computes locally.
    pub fn fetch(
        &self,
        key: &AnalysisKey,
        name: &str,
        source: &str,
    ) -> Result<AnalyzedProgram, FetchError> {
        let route = crate::store::route_key(key);
        let owner = self.ring.owner(route);
        let request = Json::obj([
            ("cmd", Json::from("peer_get")),
            ("name", Json::from(name)),
            ("source", Json::from(source)),
            ("geometry", geometry_json(key.geometry)),
            ("model", model_json(key.model)),
        ])
        .encode();
        let line = self.round_trip(owner, &request).map_err(|e| {
            let kind = e.kind();
            let err = FetchError::Timeout(format!("{}: {e}", self.ring.nodes()[owner]));
            if matches!(kind, ErrorKind::TimedOut | ErrorKind::WouldBlock) {
                self.timeouts.fetch_add(1, Ordering::Relaxed);
            } else {
                // Connection-level failures (refused, reset, EOF) are
                // indistinguishable from a dead peer; count them with
                // the timeouts.
                self.timeouts.fetch_add(1, Ordering::Relaxed);
            }
            err
        })?;
        match self.decode_reply(&line, key) {
            Ok(artifact) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Ok(artifact)
            }
            Err(reason) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                Err(FetchError::Rejected(format!("{}: {reason}", self.ring.nodes()[owner])))
            }
        }
    }

    /// Best-effort push of a fallback-computed artifact to its owner.
    /// Failures are silently dropped — the owner will compute the key
    /// itself if it ever needs it.
    pub fn offer(&self, key: &AnalysisKey, artifact: &AnalyzedProgram) {
        let route = crate::store::route_key(key);
        let owner = self.ring.owner(route);
        if self.self_index == Some(owner) {
            return;
        }
        let Some(artifact) = artifact_json(key, artifact) else { return };
        let frame = Json::obj([("cmd", Json::from("peer_put")), ("artifact", artifact)]);
        let frame = frame.encode();
        if frame.len() > MAX_SPEC_BYTES {
            return; // the owner would reject it with payload_too_large
        }
        if let Ok(line) = self.round_trip(owner, &frame) {
            if Json::parse(&line)
                .ok()
                .and_then(|doc| doc.get("ok").and_then(Json::as_bool))
                .unwrap_or(false)
            {
                self.puts.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// One request/response round-trip on a reused connection slot of
    /// peer `index`: the first free slot, else blocking on the last.
    fn round_trip(&self, index: usize, line: &str) -> std::io::Result<String> {
        let clients = &self.peers[index].clients;
        for slot in &clients[..clients.len() - 1] {
            if let Ok(mut client) = slot.try_lock() {
                return client.request(line);
            }
        }
        let mut client = clients[clients.len() - 1].lock().expect("peer client lock");
        client.request(line)
    }

    /// Decodes and validates a `peer_get` reply against the request key.
    fn decode_reply(&self, line: &str, key: &AnalysisKey) -> Result<AnalyzedProgram, String> {
        let doc = Json::parse(line).map_err(|e| e.to_string())?;
        if doc.get("ok").and_then(Json::as_bool) != Some(true) {
            let error = doc.get("error").and_then(Json::as_str).unwrap_or("unknown error");
            return Err(error.to_string());
        }
        let artifact = doc.get("artifact").ok_or("reply lacks `artifact`")?;
        let (wire_key, artifact) = artifact_from_json(artifact)?;
        if wire_key != *key {
            return Err("artifact key does not match the request".to_string());
        }
        Ok(artifact)
    }
}

/// Encodes the `peer_get` success reply for an artifact.
pub fn peer_get_response(id: Option<u64>, key: &AnalysisKey, artifact: &AnalyzedProgram) -> String {
    match artifact_json(key, artifact) {
        Some(json) => ok_response_with(id, "artifact", json),
        None => crate::proto::err_response_coded(
            id,
            crate::proto::CODE_PAYLOAD_TOO_LARGE,
            "artifact does not fit a peer frame",
        ),
    }
}

fn geometry_json(geometry: CacheGeometry) -> Json {
    Json::Arr(vec![
        Json::from(u64::from(geometry.sets())),
        Json::from(u64::from(geometry.ways())),
        Json::from(u64::from(geometry.line_bytes())),
    ])
}

fn model_json(model: TimingModel) -> Json {
    Json::Arr(vec![Json::from(model.cpi), Json::from(model.miss_penalty)])
}

/// Largest integer a `Json::Num` (f64) round-trips exactly.
const MAX_EXACT: u64 = 1 << 53;

/// Encodes an artifact's wire core, or `None` when it cannot travel
/// (a block number beyond f64-exact range — unreachable for real
/// programs, whose block numbers are addresses shifted right).
pub fn artifact_json(key: &AnalysisKey, artifact: &AnalyzedProgram) -> Option<Json> {
    let mut paths = Vec::with_capacity(artifact.paths().len());
    for path in artifact.paths() {
        let mut accesses = Vec::with_capacity(path.trace.accesses().len());
        for &(block, hit) in path.trace.accesses() {
            if block.number() >= MAX_EXACT {
                return None;
            }
            accesses.push(Json::Arr(vec![Json::from(block.number()), Json::from(u64::from(hit))]));
        }
        paths.push(Json::obj([
            ("name", Json::from(path.name.as_str())),
            ("acc", Json::Arr(accesses)),
        ]));
    }
    Some(Json::obj([
        ("name", Json::from(artifact.name())),
        ("wcet", Json::from(artifact.wcet())),
        ("fingerprint", Json::from(format!("{:032x}", artifact.fingerprint()).as_str())),
        ("program_hash", Json::from(format!("{:032x}", key.program_hash).as_str())),
        ("geometry", geometry_json(key.geometry)),
        ("model", model_json(key.model)),
        ("paths", Json::Arr(paths)),
    ]))
}

/// Decodes an artifact wire object back into its [`AnalysisKey`] and
/// rebuilt [`AnalyzedProgram`].
///
/// # Errors
///
/// Returns a message for any missing field, malformed hex hash, or
/// invalid geometry.
pub fn artifact_from_json(doc: &Json) -> Result<(AnalysisKey, AnalyzedProgram), String> {
    let name =
        doc.get("name").and_then(Json::as_str).ok_or("artifact lacks string `name`")?.to_string();
    let wcet = doc.get("wcet").and_then(Json::as_u64).ok_or("artifact lacks integer `wcet`")?;
    let fingerprint = hex_u128(doc.get("fingerprint"), "fingerprint")?;
    let program_hash = hex_u128(doc.get("program_hash"), "program_hash")?;
    let geometry = {
        let (sets, ways, line) = triple(doc.get("geometry"))?;
        CacheGeometry::new(sets, ways, line).map_err(|e| format!("artifact geometry: {e}"))?
    };
    let model = {
        let err = "artifact `model` must be [cpi, miss_penalty]";
        let Some(Json::Arr(parts)) = doc.get("model") else { return Err(err.into()) };
        let [cpi, miss] = parts.as_slice() else { return Err(err.into()) };
        TimingModel { cpi: cpi.as_u64().ok_or(err)?, miss_penalty: miss.as_u64().ok_or(err)? }
    };
    let Some(Json::Arr(paths)) = doc.get("paths") else {
        return Err("artifact lacks array `paths`".into());
    };
    let mut path_accesses = Vec::with_capacity(paths.len());
    for path in paths {
        let path_name = path
            .get("name")
            .and_then(Json::as_str)
            .ok_or("artifact path lacks string `name`")?
            .to_string();
        let Some(Json::Arr(accesses)) = path.get("acc") else {
            return Err(format!("artifact path `{path_name}` lacks array `acc`"));
        };
        let mut decoded = Vec::with_capacity(accesses.len());
        for access in accesses {
            let Json::Arr(pair) = access else {
                return Err(format!("path `{path_name}`: access must be [block, hit]"));
            };
            let [block, hit] = pair.as_slice() else {
                return Err(format!("path `{path_name}`: access must be [block, hit]"));
            };
            let block =
                block.as_u64().ok_or_else(|| format!("path `{path_name}`: bad block number"))?;
            let hit = match hit.as_u64() {
                Some(0) => false,
                Some(1) => true,
                _ => return Err(format!("path `{path_name}`: hit flag must be 0 or 1")),
            };
            decoded.push((MemoryBlock::new(block), hit));
        }
        path_accesses.push((path_name, decoded));
    }
    let key = AnalysisKey { program_hash, geometry, model };
    let artifact =
        AnalyzedProgram::from_parts(name, wcet, geometry, model, fingerprint, path_accesses);
    Ok((key, artifact))
}

fn hex_u128(value: Option<&Json>, field: &str) -> Result<u128, String> {
    let text = value
        .and_then(Json::as_str)
        .ok_or_else(|| format!("artifact lacks hex string `{field}`"))?;
    u128::from_str_radix(text, 16).map_err(|e| format!("artifact `{field}`: {e}"))
}

fn triple(value: Option<&Json>) -> Result<(u32, u32, u32), String> {
    let err = "artifact `geometry` must be [sets, ways, line_bytes]";
    let Some(Json::Arr(parts)) = value else { return Err(err.into()) };
    let [a, b, c] = parts.as_slice() else { return Err(err.into()) };
    let field = |v: &Json| -> Result<u32, String> {
        v.as_u64().and_then(|n| u32::try_from(n).ok()).ok_or_else(|| err.to_string())
    };
    Ok((field(a)?, field(b)?, field(c)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::program_hash;

    const TASK: &str =
        "start: li r1, 5\nloop: addi r1, r1, -1\nbne r1, r0, loop\n.bound loop, 5\nhalt\n";

    fn analyzed(name: &str, source: &str) -> (AnalysisKey, AnalyzedProgram) {
        let geometry = CacheGeometry::new(64, 2, 16).unwrap();
        let model = TimingModel::default();
        let program = rtprogram::asm::assemble(name, source).unwrap();
        let artifact = AnalyzedProgram::analyze(&program, geometry, model).unwrap();
        let key = AnalysisKey { program_hash: program_hash(name, source), geometry, model };
        (key, artifact)
    }

    #[test]
    fn peers_file_parses_and_rejects_garbage() {
        let peers = parse_peers("# cluster\n10.0.0.1:7227\n\n10.0.0.2:7227 # second\n").unwrap();
        assert_eq!(peers, vec!["10.0.0.1:7227", "10.0.0.2:7227"]);
        assert!(parse_peers("").unwrap_err().contains("no addresses"));
        assert!(parse_peers("# only comments\n").unwrap_err().contains("no addresses"));
        assert!(parse_peers("a:1 b:2\n").unwrap_err().contains("whitespace"));
    }

    #[test]
    fn artifact_wire_round_trip_is_exact() {
        let (key, original) = analyzed("t", TASK);
        let json = artifact_json(&key, &original).expect("artifact must encode");
        // Through actual bytes, like the wire.
        let decoded = Json::parse(&json.encode()).unwrap();
        let (wire_key, rebuilt) = artifact_from_json(&decoded).unwrap();
        assert_eq!(wire_key, key);
        assert_eq!(format!("{original:?}"), format!("{rebuilt:?}"));
    }

    #[test]
    fn artifact_decode_rejects_corruption() {
        let (key, original) = analyzed("t", TASK);
        let good = artifact_json(&key, &original).unwrap();
        for (field, replacement) in [
            ("name", Json::Num(7.0)),
            ("wcet", Json::from("x")),
            ("fingerprint", Json::from("zz")),
            ("program_hash", Json::Null),
            ("geometry", Json::Arr(vec![Json::from(3u64), Json::from(1u64), Json::from(16u64)])),
            ("model", Json::from("nope")),
            ("paths", Json::from("nope")),
        ] {
            let Json::Obj(mut map) = good.clone() else { panic!("artifact must be an object") };
            map.insert(field.to_string(), replacement);
            assert!(artifact_from_json(&Json::Obj(map)).is_err(), "corrupt `{field}` must fail");
        }
    }

    #[test]
    fn front_owns_nothing_and_members_partition() {
        let config = ClusterConfig {
            peers: vec!["a:1".into(), "b:2".into(), "c:3".into()],
            self_index: None,
            peer_deadline: Duration::from_millis(100),
        };
        let front = Cluster::new(&config);
        assert!(front.is_front());
        let members: Vec<Cluster> = (0..3)
            .map(|i| Cluster::new(&ClusterConfig { self_index: Some(i), ..config.clone() }))
            .collect();
        for key in 0..512u128 {
            let route = key.wrapping_mul(0x9e37_79b9_7f4a_7c15_f39c_0c65_31b3_9c9d);
            assert!(!front.owns(route));
            let owners: Vec<bool> = members.iter().map(|m| m.owns(route)).collect();
            assert_eq!(owners.iter().filter(|o| **o).count(), 1, "exactly one owner per key");
        }
    }

    #[test]
    fn fetch_counts_timeouts_against_dead_peers() {
        // Nothing listens on this address (bind-then-drop frees it).
        let addr = {
            let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            listener.local_addr().unwrap().to_string()
        };
        let cluster = Cluster::new(&ClusterConfig {
            peers: vec![addr],
            self_index: None,
            peer_deadline: Duration::from_millis(100),
        });
        let (key, _) = analyzed("t", TASK);
        let err = cluster.fetch(&key, "t", TASK).unwrap_err();
        assert!(matches!(err, FetchError::Timeout(_)), "{err}");
        assert_eq!(cluster.stats().timeouts, 1);
        assert_eq!(cluster.stats().fallbacks(), 1);
    }
}
