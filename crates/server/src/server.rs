//! The TCP daemon: accept loop, request execution and graceful shutdown.
//!
//! Connections are the unit of dispatch: each accepted socket becomes one
//! job on the fixed [`WorkerPool`], whose worker serves that client's
//! requests back-to-back until it disconnects. Requests on *different*
//! connections therefore execute concurrently (up to the pool size),
//! while each client observes its own requests in order — which is what
//! a pipelined newline-delimited protocol needs.
//!
//! Shutdown protocol: a `shutdown` request is acknowledged on its own
//! connection, then the shutdown flag is raised and the server pokes its
//! own listener with an empty connection to unblock `accept`. The accept
//! loop exits, the pool drains (every queued connection and in-flight
//! request still completes), and `serve` returns.

use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use crpd::{AnalyzedTask, TaskParams};
use rtcli::spec::SpecTask;
use rtcli::{
    cmd_crpd_with, cmd_sim_with, cmd_wcet, cmd_wcrt_cached, CliError, ServeOptions, SystemSpec,
};

use crate::json::Json;
use crate::metrics::Metrics;
use crate::pool::WorkerPool;
use crate::proto::{err_response, ok_response, ok_response_with, Command, Request, SpecPayload};
use crate::store::ArtifactStore;

/// State shared by every worker: the artifact cache, the metrics
/// registry, the analysis pool and the shutdown flag.
#[derive(Debug)]
pub struct ServerState {
    /// Memoized analysis artifacts.
    pub store: ArtifactStore,
    /// Request counters and latency histograms.
    pub metrics: Metrics,
    /// The `rtpar` pool intra-request analysis fans out on. Sized by the
    /// same `--threads` knob as the connection [`WorkerPool`], so `serve
    /// --threads 1` truly single-threads the analysis (the pool spawns no
    /// background workers; every closure runs inline on the connection
    /// worker).
    analysis: rtpar::Pool,
    shutdown: AtomicBool,
}

impl Default for ServerState {
    fn default() -> Self {
        ServerState::with_threads(rtpar::default_threads())
    }
}

impl ServerState {
    /// State with an analysis pool of `threads` total threads.
    pub fn with_threads(threads: usize) -> ServerState {
        ServerState {
            store: ArtifactStore::default(),
            metrics: Metrics::default(),
            analysis: rtpar::Pool::new(threads),
            shutdown: AtomicBool::new(false),
        }
    }

    /// The analysis pool shared by every request.
    pub fn analysis_pool(&self) -> &rtpar::Pool {
        &self.analysis
    }

    fn begin_shutdown(&self, listener_addr: SocketAddr) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept loop; the probe connection is dropped there.
        let _ = TcpStream::connect(listener_addr);
    }
}

/// A bound, not-yet-serving analysis server.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    pool: WorkerPool,
    state: Arc<ServerState>,
}

impl Server {
    /// Binds the listener and spawns the worker pool.
    ///
    /// # Errors
    ///
    /// Returns the bind error (bad host, port in use, …).
    pub fn bind(opts: &ServeOptions) -> io::Result<Server> {
        let listener = TcpListener::bind((opts.host.as_str(), opts.port))?;
        // `--threads` is the single parallelism knob: it sizes both the
        // connection pool and the analysis pool the requests fan out on.
        Ok(Server {
            listener,
            pool: WorkerPool::new(opts.threads),
            state: Arc::new(ServerState::with_threads(opts.threads)),
        })
    }

    /// The bound address (resolves `--port 0` to the actual port).
    ///
    /// # Errors
    ///
    /// Propagates the OS error for a dead socket.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves until a `shutdown` request arrives, then drains in-flight
    /// work and returns.
    ///
    /// # Errors
    ///
    /// Returns an error only for a dead listener socket; per-connection
    /// failures are contained to their connection.
    pub fn serve(mut self) -> io::Result<()> {
        let addr = self.listener.local_addr()?;
        for stream in self.listener.incoming() {
            if self.state.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = stream else { continue };
            let state = Arc::clone(&self.state);
            self.pool.execute(move || handle_connection(stream, &state, addr));
        }
        self.pool.drain();
        Ok(())
    }

    /// Binds and serves on a background thread; returns a handle with the
    /// resolved address. Used by tests and embedding callers.
    ///
    /// # Errors
    ///
    /// Returns the bind error.
    pub fn spawn(opts: &ServeOptions) -> io::Result<ServerHandle> {
        let server = Server::bind(opts)?;
        let addr = server.local_addr()?;
        let thread = std::thread::Builder::new()
            .name("rtserver-accept".to_string())
            .spawn(move || server.serve())?;
        Ok(ServerHandle { addr, thread })
    }
}

/// A running background server (see [`Server::spawn`]).
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    thread: JoinHandle<io::Result<()>>,
}

impl ServerHandle {
    /// The resolved listening address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Waits for the server to finish (i.e. for a `shutdown` request).
    ///
    /// # Errors
    ///
    /// Propagates the serve error, or reports a panicked server thread.
    pub fn join(self) -> io::Result<()> {
        self.thread.join().map_err(|_| io::Error::other("server thread panicked"))?
    }
}

/// Binds, prints the listening address, and serves until shutdown. The
/// `trisc serve` entry point.
///
/// # Errors
///
/// Returns bind/listener errors.
pub fn run(opts: &ServeOptions) -> io::Result<()> {
    // With `--trace-out`, keep one rtobs session alive for the daemon's
    // whole life and flush the Chrome trace of everything it served after
    // the drain. Without it, collection stays disabled and free.
    let session = opts.trace_out.as_deref().map(|_| rtobs::begin());
    let server = Server::bind(opts)?;
    println!(
        "rtserver listening on {} ({} connection workers, {}-thread analysis pool)",
        server.local_addr()?,
        opts.threads,
        opts.threads
    );
    server.serve()?;
    if let (Some(session), Some(path)) = (session, opts.trace_out.as_deref()) {
        session.recorder().write_chrome_trace(Path::new(path))?;
        println!("rtobs trace written to {path}");
    }
    Ok(())
}

fn handle_connection(stream: TcpStream, state: &ServerState, listener_addr: SocketAddr) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        // Run the request with the server's analysis pool installed so
        // nested `rtpar` fan-out inside the analyses lands there.
        let (response, shutdown) = state.analysis.install(|| handle_request(state, &line));
        if writeln!(writer, "{response}").and_then(|()| writer.flush()).is_err() {
            break;
        }
        if shutdown {
            state.begin_shutdown(listener_addr);
            break;
        }
    }
}

/// Executes one request line; returns the response line and whether this
/// request asked the server to shut down.
fn handle_request(state: &ServerState, line: &str) -> (String, bool) {
    let started = Instant::now();
    let request = match Request::parse(line) {
        Ok(request) => request,
        Err(message) => {
            state.metrics.record("invalid", false, started.elapsed());
            return (err_response(None, &message), false);
        }
    };
    let endpoint = request.cmd.endpoint();
    let id = request.id;
    let (response, ok, shutdown) = match &request.cmd {
        Command::Ping => (ok_response(id, "pong"), true, false),
        Command::Metrics => {
            let snapshot = state.metrics.snapshot(
                &state.store,
                state.analysis.threads(),
                state.analysis.background_workers(),
            );
            (ok_response_with(id, "metrics", snapshot), true, false)
        }
        Command::MetricsProm => {
            let text = state.metrics.prometheus(&state.store, &state.analysis.stats());
            (ok_response(id, &text), true, false)
        }
        Command::Shutdown => (ok_response(id, "draining in-flight work, then exiting"), true, true),
        Command::Wcet(payload) => finish(id, run_wcet(payload)),
        Command::Crpd(payload) => finish(id, run_crpd(state, payload)),
        Command::Wcrt(payload) => finish(id, run_wcrt(state, payload)),
        Command::Sim { payload, horizon } => finish(id, run_sim(payload, *horizon)),
        // The one streaming command: on success the "response" is several
        // newline-separated frames, written to the client as one block.
        Command::Explore { payload, grid } => match run_explore(state, id, payload, grid) {
            Ok(frames) => (frames, true, false),
            Err(error) => (err_response(id, &error.to_string()), false, false),
        },
    };
    state.metrics.record(endpoint, ok, started.elapsed());
    (response, shutdown)
}

fn finish(id: Option<u64>, result: Result<String, CliError>) -> (String, bool, bool) {
    match result {
        Ok(output) => (ok_response(id, &output), true, false),
        Err(error) => (err_response(id, &error.to_string()), false, false),
    }
}

/// Parses the payload's spec with an empty base dir, leaving task `FILE`
/// fields as the literal keys the `sources` map uses.
fn parse_spec(payload: &SpecPayload) -> Result<SystemSpec, CliError> {
    SystemSpec::parse(&payload.spec, Path::new(""))
}

/// A task's source text: the inline `sources` entry if present, else the
/// server's filesystem.
fn resolve_source(payload: &SpecPayload, task: &SpecTask) -> Result<String, CliError> {
    let key = task.source.to_string_lossy();
    if let Some(text) = payload.sources.get(key.as_ref()) {
        return Ok(text.clone());
    }
    std::fs::read_to_string(&task.source)
        .map_err(|e| CliError::Io(format!("{}: {e}", task.source.display())))
}

fn run_wcet(payload: &SpecPayload) -> Result<String, CliError> {
    let spec = parse_spec(payload)?;
    let mut out = String::new();
    for task in &spec.tasks {
        out.push_str(&cmd_wcet(&task.name, &resolve_source(payload, task)?, &spec.cache)?);
    }
    Ok(out)
}

fn run_crpd(state: &ServerState, payload: &SpecPayload) -> Result<String, CliError> {
    let spec = parse_spec(payload)?;
    let [preempted_task, preempting_task] = spec.tasks.as_slice() else {
        return Err(CliError::Spec(
            "crpd needs exactly two task lines: the preempted task, then the preempting task"
                .into(),
        ));
    };
    let geometry = spec.cache.geometry()?;
    let model = spec.cache.model();
    // Mirror the one-shot CLI exactly (`cmd_crpd`): pair analysis uses
    // pseudo-parameters — unbounded period, priorities 2 (preempted) and
    // 1 (preempting) — so the server's report is byte-identical.
    let memoized = |task: &SpecTask, priority: u32| -> Result<AnalyzedTask, CliError> {
        state.store.analyzed(
            &task.name,
            &resolve_source(payload, task)?,
            TaskParams { period: u64::MAX, priority },
            geometry,
            model,
        )
    };
    let (preempted, preempting) =
        rtpar::join(|| memoized(preempted_task, 2), || memoized(preempting_task, 1));
    Ok(cmd_crpd_with(&preempted?, &preempting?, &spec.cache))
}

fn run_wcrt(state: &ServerState, payload: &SpecPayload) -> Result<String, CliError> {
    let spec = parse_spec(payload)?;
    let geometry = spec.cache.geometry()?;
    let model = spec.cache.model();
    // Analyze all tasks of the request in parallel; results (and the
    // first error, if any) are taken in task order, so the rendered
    // report is byte-identical at any pool size.
    let tasks: Vec<AnalyzedTask> = rtpar::par_map_range(spec.tasks.len(), |i| {
        let task = &spec.tasks[i];
        state.store.analyzed(
            &task.name,
            &resolve_source(payload, task)?,
            TaskParams { period: task.period, priority: task.priority },
            geometry,
            model,
        )
    })
    .into_iter()
    .collect::<Result<_, _>>()?;
    // The pairwise CRPD bounds come from the store's shared cell cache,
    // so repeated (or param-tweaked) requests reuse them.
    cmd_wcrt_cached(&spec, &tasks, state.store.cells())
}

fn run_sim(payload: &SpecPayload, horizon: Option<u64>) -> Result<String, CliError> {
    let spec = parse_spec(payload)?;
    let programs = spec.programs_with(&mut |task| resolve_source(payload, task))?;
    cmd_sim_with(&spec, &programs, horizon)
}

/// Runs a design-space sweep against the server's shared artifact store
/// and returns the streamed NDJSON frames (one per evaluated batch plus
/// the final front frame) as a newline-separated block.
///
/// The sweep's analysis provider is [`ArtifactStore::analyzed_program`],
/// so points share `assemble`/`analyze` artifacts — and `crpd_cell`
/// entries — with every other request the server has served, with
/// single-flight deduplication across concurrent sweeps.
fn run_explore(
    state: &ServerState,
    id: Option<u64>,
    payload: &SpecPayload,
    grid_text: &str,
) -> Result<String, CliError> {
    let spec = parse_spec(payload)?;
    let grid = rtexplore::Grid::parse(grid_text)?;
    let plan = rtexplore::Plan::new(&spec, &grid)?;
    let sources: Vec<(String, String)> = spec
        .tasks
        .iter()
        .map(|task| Ok((task.name.clone(), resolve_source(payload, task)?)))
        .collect::<Result<_, CliError>>()?;
    let provider = |task: usize, geometry, model| {
        let (name, source) = &sources[task];
        state.store.analyzed_program(name, source, geometry, model)
    };
    let id_json = || id.map_or(Json::Null, Json::from);
    let mut frames = String::new();
    let outcome = rtexplore::run_sweep(&plan, &provider, state.store.cells(), |batch, front| {
        let points: Vec<Json> = batch
            .iter()
            .map(|point| {
                Json::obj([
                    ("index", Json::from(point.config.index as u64)),
                    ("schedulable", Json::Bool(point.schedulable)),
                    ("row", Json::from(rtexplore::render_point(point).as_str())),
                ])
            })
            .collect();
        let frame = Json::obj([
            ("id", id_json()),
            ("ok", Json::Bool(true)),
            ("event", Json::from("points")),
            ("points", Json::Arr(points)),
            ("front_size", Json::from(front.len() as u64)),
        ]);
        frames.push_str(&frame.encode());
        frames.push('\n');
    })?;
    state.metrics.record_explore(outcome.points as u64, outcome.front.len() as u64);
    let output = rtexplore::explain_front(&plan, &provider, state.store.cells(), &outcome.front)?;
    let front: Vec<Json> =
        outcome.front.members().iter().map(|m| Json::from(m.config.index as u64)).collect();
    let done = Json::obj([
        ("id", id_json()),
        ("ok", Json::Bool(true)),
        ("event", Json::from("done")),
        ("points_total", Json::from(outcome.points as u64)),
        ("front", Json::Arr(front)),
        ("front_size", Json::from(outcome.front.len() as u64)),
        ("output", Json::from(output.as_str())),
    ]);
    frames.push_str(&done.encode());
    Ok(frames)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;

    const TASK_A: &str = ".data 0x100000\nbuf: .word 1,2,3\n.text 0x1000\nstart: li r1, buf\nld r2, 0(r1)\nld r2, 0(r1)\nhalt\n";
    const TASK_B: &str =
        ".data 0x100400\nbuf: .word 7\n.text 0x2000\nstart: li r1, buf\nld r2, 0(r1)\nhalt\n";

    fn spawn() -> ServerHandle {
        let opts = ServeOptions { host: "127.0.0.1".into(), port: 0, threads: 2, trace_out: None };
        Server::spawn(&opts).expect("bind on an ephemeral port")
    }

    fn roundtrip(addr: SocketAddr, lines: &[String]) -> Vec<Json> {
        let stream = TcpStream::connect(addr).expect("connect");
        let mut writer = BufWriter::new(stream.try_clone().expect("clone"));
        let mut reader = BufReader::new(stream);
        lines
            .iter()
            .map(|line| {
                writeln!(writer, "{line}").and_then(|()| writer.flush()).expect("send");
                let mut response = String::new();
                reader.read_line(&mut response).expect("recv");
                Json::parse(response.trim_end()).expect("response is json")
            })
            .collect()
    }

    fn wcrt_request(id: u64) -> String {
        Json::obj([
            ("id", Json::from(id)),
            ("cmd", Json::from("wcrt")),
            (
                "spec",
                Json::from(
                    "cache 64 2 16\ncmiss 20\nccs 50\ntask hi a.s 5000 1\ntask lo b.s 50000 2\n",
                ),
            ),
            ("sources", Json::obj([("a.s", Json::from(TASK_A)), ("b.s", Json::from(TASK_B))])),
        ])
        .encode()
    }

    fn shutdown_and_join(handle: ServerHandle) {
        let replies = roundtrip(handle.addr(), &[r#"{"cmd":"shutdown"}"#.to_string()]);
        assert_eq!(replies[0].get("ok").unwrap().as_bool(), Some(true));
        handle.join().expect("clean exit");
    }

    #[test]
    fn ping_errors_and_shutdown() {
        let handle = spawn();
        let replies = roundtrip(
            handle.addr(),
            &[
                r#"{"id":1,"cmd":"ping"}"#.to_string(),
                "{not json".to_string(),
                r#"{"id":2,"cmd":"crpd","spec":"task a a.s 1 1\n","sources":{"a.s":"halt\n"}}"#
                    .to_string(),
            ],
        );
        assert_eq!(replies[0].get("output").unwrap().as_str(), Some("pong"));
        assert_eq!(replies[0].get("id").unwrap().as_u64(), Some(1));
        assert_eq!(replies[1].get("ok").unwrap().as_bool(), Some(false));
        let crpd_error = replies[2].get("error").unwrap().as_str().unwrap();
        assert!(crpd_error.contains("exactly two task lines"), "{crpd_error}");
        shutdown_and_join(handle);
    }

    #[test]
    fn wcrt_is_memoized_and_matches_the_one_shot_cli() {
        let handle = spawn();
        let replies = roundtrip(
            handle.addr(),
            &[wcrt_request(1), wcrt_request(2), r#"{"cmd":"metrics"}"#.to_string()],
        );
        let first = replies[0].get("output").unwrap().as_str().unwrap();
        let second = replies[1].get("output").unwrap().as_str().unwrap();
        assert_eq!(first, second, "repeated requests must render identically");

        // Byte-identical to the in-process one-shot path.
        let dir = std::env::temp_dir().join(format!("rtserver-wcrt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("a.s"), TASK_A).unwrap();
        std::fs::write(dir.join("b.s"), TASK_B).unwrap();
        std::fs::write(
            dir.join("sys.spec"),
            "cache 64 2 16\ncmiss 20\nccs 50\ntask hi a.s 5000 1\ntask lo b.s 50000 2\n",
        )
        .unwrap();
        let spec = SystemSpec::load(&dir.join("sys.spec")).unwrap();
        assert_eq!(first, rtcli::cmd_wcrt(&spec).unwrap());
        std::fs::remove_dir_all(&dir).ok();

        let metrics = replies[2].get("metrics").unwrap();
        let cache = metrics.get("artifact_cache").unwrap();
        assert_eq!(cache.get("hits").unwrap().as_u64(), Some(2), "second request hits both tasks");
        assert_eq!(cache.get("misses").unwrap().as_u64(), Some(2));
        let wcrt = metrics.get("endpoints").unwrap().get("wcrt").unwrap();
        assert_eq!(wcrt.get("requests").unwrap().as_u64(), Some(2));
        shutdown_and_join(handle);
    }

    #[test]
    fn explore_streams_point_frames_then_a_front() {
        let handle = spawn();
        let request = Json::obj([
            ("id", Json::from(9u64)),
            ("cmd", Json::from("explore")),
            (
                "spec",
                Json::from(
                    "cache 64 2 16\ncmiss 20\nccs 50\ntask hi a.s 5000 1\ntask lo b.s 50000 2\n",
                ),
            ),
            ("grid", Json::from("sets 32 64\nways 1 2\napproach all\n")),
            ("sources", Json::obj([("a.s", Json::from(TASK_A)), ("b.s", Json::from(TASK_B))])),
        ])
        .encode();
        let stream = TcpStream::connect(handle.addr()).expect("connect");
        let mut writer = BufWriter::new(stream.try_clone().expect("clone"));
        let mut reader = BufReader::new(stream);
        writeln!(writer, "{request}").and_then(|()| writer.flush()).expect("send");
        // Read frames until the terminal `done` frame.
        let mut point_count = 0;
        let done = loop {
            let mut line = String::new();
            reader.read_line(&mut line).expect("recv");
            let frame = Json::parse(line.trim_end()).expect("frame is json");
            assert_eq!(frame.get("ok").unwrap().as_bool(), Some(true), "{line}");
            assert_eq!(frame.get("id").unwrap().as_u64(), Some(9));
            match frame.get("event").unwrap().as_str().unwrap() {
                "points" => {
                    let Some(Json::Arr(points)) = frame.get("points") else {
                        panic!("points frame without points: {line}")
                    };
                    for point in points {
                        assert_eq!(point.get("index").unwrap().as_u64(), Some(point_count));
                        assert!(point
                            .get("row")
                            .unwrap()
                            .as_str()
                            .unwrap()
                            .starts_with(&format!("point {point_count} ")));
                        point_count += 1;
                    }
                }
                "done" => break frame,
                other => panic!("unexpected event `{other}`"),
            }
        };
        assert_eq!(done.get("points_total").unwrap().as_u64(), Some(16));
        assert_eq!(point_count, 16, "every point streamed before done");
        let front_size = done.get("front_size").unwrap().as_u64().unwrap();
        assert!(front_size >= 1);
        let output = done.get("output").unwrap().as_str().unwrap();
        assert!(output.contains("Pareto front ("), "{output}");
        assert!(output.contains("binding task `"), "{output}");

        // The sweep shows up in the metrics snapshot, and its artifacts
        // landed in the shared store (4 geometries x 2 tasks analyses).
        writeln!(writer, r#"{{"cmd":"metrics"}}"#).and_then(|()| writer.flush()).expect("send");
        let mut line = String::new();
        reader.read_line(&mut line).expect("recv");
        let metrics = Json::parse(line.trim_end()).unwrap();
        let explore = metrics.get("metrics").unwrap().get("explore").unwrap();
        assert_eq!(explore.get("points_total").unwrap().as_u64(), Some(16));
        assert_eq!(explore.get("front_size").unwrap().as_u64(), Some(front_size));
        let stages = metrics.get("metrics").unwrap().get("stages").unwrap();
        assert_eq!(stages.get("analyze").unwrap().get("entries").unwrap().as_u64(), Some(8));
        assert_eq!(stages.get("assemble").unwrap().get("entries").unwrap().as_u64(), Some(2));
        drop(writer);
        drop(reader);
        shutdown_and_join(handle);
    }

    #[test]
    fn sim_and_wcet_render_over_inline_sources() {
        let handle = spawn();
        let sim = Json::obj([
            ("cmd", Json::from("sim")),
            ("horizon", Json::from(60_000u64)),
            (
                "spec",
                Json::from(
                    "cache 64 2 16\ncmiss 20\nccs 50\ntask hi a.s 5000 1\ntask lo b.s 50000 2\n",
                ),
            ),
            ("sources", Json::obj([("a.s", Json::from(TASK_A)), ("b.s", Json::from(TASK_B))])),
        ])
        .encode();
        let wcet = Json::obj([
            ("cmd", Json::from("wcet")),
            ("spec", Json::from("cache 64 2 16\ntask hi a.s 5000 1\n")),
            ("sources", Json::obj([("a.s", Json::from(TASK_A))])),
        ])
        .encode();
        let replies = roundtrip(handle.addr(), &[sim, wcet]);
        let sim_out = replies[0].get("output").unwrap().as_str().unwrap();
        assert!(sim_out.contains("max response"), "{sim_out}");
        let wcet_out = replies[1].get("output").unwrap().as_str().unwrap();
        assert!(wcet_out.contains("WCET ="), "{wcet_out}");
        shutdown_and_join(handle);
    }
}
