//! The TCP daemon: reactor-driven I/O, request execution, admission
//! control and graceful shutdown.
//!
//! Connection I/O runs on the `rtreact` event loops: a few event threads
//! multiplex every connection's reads, line framing and buffered writes.
//! *Requests* are the unit of dispatch — each framed line becomes one
//! job on the fixed [`WorkerPool`] — and the reactor dispatches at most
//! one request per connection at a time, so each client observes its own
//! requests in order (exactly like the thread-per-connection server this
//! replaced) while requests on different connections execute
//! concurrently up to the pool size.
//!
//! Admission control sits in front of the pool: once the in-flight count
//! reaches `--max-inflight`, new analysis requests are shed on the event
//! thread with a typed `overloaded` error (ops-plane commands always get
//! through), and analysis requests whose readiness-to-pickup wait
//! exceeds their deadline (`--deadline-ms`, or the request's own
//! `deadline_ms`) are rejected with `deadline_exceeded` before any
//! analysis runs.
//!
//! Shutdown protocol: a `shutdown` request completes with
//! [`rtreact::Control::Shutdown`]; the reactor writes the ack, stops
//! accepting and reading, drains every dispatched request, and `serve`
//! returns after the request pool finishes any remaining work.

use std::collections::{BTreeMap, VecDeque};
use std::io;
use std::net::{SocketAddr, TcpListener};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crpd::{AnalyzedTask, TaskParams};
use rtcli::spec::SpecTask;
use rtcli::{
    cmd_crpd_with, cmd_sim_with, cmd_wcet, cmd_wcrt_cached, CliError, ServeOptions, SystemSpec,
};
use rtobs::flight::{FinishedFlight, FlightRecord, FlightRecorder, STAGES};

use crate::json::Json;
use crate::metrics::{AdmissionSnapshot, Metrics};
use crate::pool::WorkerPool;
use crate::proto::{
    err_response, err_response_coded, ok_response, ok_response_with, Command, Request, SpecPayload,
};
use crate::store::ArtifactStore;

/// State shared by every worker: the artifact cache, the metrics
/// registry, the analysis pool and the shutdown flag.
#[derive(Debug)]
pub struct ServerState {
    /// Memoized analysis artifacts.
    pub store: ArtifactStore,
    /// Request counters and latency histograms.
    pub metrics: Metrics,
    /// The always-on flight recorder every request flies through.
    pub flight: FlightRecorder,
    /// The `rtpar` pool intra-request analysis fans out on. Sized by the
    /// same `--threads` knob as the connection [`WorkerPool`], so `serve
    /// --threads 1` truly single-threads the analysis (the pool spawns no
    /// background workers; every closure runs inline on the connection
    /// worker).
    analysis: rtpar::Pool,
    /// `--slow-ms`: requests at or above this wall time get their span
    /// tree captured into the black box. `None` disables capture.
    slow_ms: Option<u64>,
    /// The most recent slow-request captures, newest last.
    black_box: Mutex<VecDeque<FinishedFlight>>,
    /// Slow requests captured since startup (the black box is bounded;
    /// this is not).
    slow_total: AtomicU64,
    /// `--max-inflight`: the admission cap on concurrently dispatched
    /// requests; at or past it, new analysis requests are shed.
    max_inflight: u64,
    /// `--deadline-ms`: the server-wide queue-wait deadline for analysis
    /// requests (overridable per request).
    deadline_ms: Option<u64>,
    /// Requests currently dispatched to the worker pool.
    inflight: AtomicU64,
    /// Analysis requests shed by admission control since startup.
    shed_total: AtomicU64,
    /// The reactor's always-on connection counters.
    react_stats: Arc<rtreact::ReactorStats>,
}

/// How many slow-request span trees the black box retains.
const BLACK_BOX_CAP: usize = 32;

impl Default for ServerState {
    fn default() -> Self {
        ServerState::with_threads(rtpar::default_threads())
    }
}

impl ServerState {
    /// State with an analysis pool of `threads` total threads and default
    /// flight-recorder settings (512-record ring, no slow capture).
    pub fn with_threads(threads: usize) -> ServerState {
        ServerState::with_flight(threads, 512, None)
    }

    /// State with an analysis pool of `threads` threads, a flight ring of
    /// `flight_capacity` records, and slow-request capture at `slow_ms`.
    pub fn with_flight(
        threads: usize,
        flight_capacity: usize,
        slow_ms: Option<u64>,
    ) -> ServerState {
        let opts = ServeOptions { threads, flight_capacity, slow_ms, ..ServeOptions::default() };
        ServerState::with_options(&opts)
    }

    /// State configured from the full `trisc serve` option set, plus a
    /// cluster to route the `analyze` stage through ([`Server::bind`]
    /// builds it from `--cluster`/`--node-id`/`--front`).
    pub fn with_options_clustered(
        opts: &ServeOptions,
        cluster: Option<Arc<crate::cluster::Cluster>>,
    ) -> ServerState {
        let store = match cluster {
            Some(cluster) => ArtifactStore::with_cluster(cluster, opts.replica_capacity),
            None => ArtifactStore::default(),
        };
        ServerState {
            store,
            metrics: Metrics::default(),
            flight: FlightRecorder::new(opts.flight_capacity),
            analysis: rtpar::Pool::new(opts.threads),
            slow_ms: opts.slow_ms,
            black_box: Mutex::new(VecDeque::with_capacity(BLACK_BOX_CAP)),
            slow_total: AtomicU64::new(0),
            max_inflight: opts.max_inflight,
            deadline_ms: opts.deadline_ms,
            inflight: AtomicU64::new(0),
            shed_total: AtomicU64::new(0),
            react_stats: Arc::new(rtreact::ReactorStats::default()),
        }
    }

    /// State configured from the full `trisc serve` option set, without
    /// cluster routing (the cluster needs the peers file read first; see
    /// [`with_options_clustered`](ServerState::with_options_clustered)).
    pub fn with_options(opts: &ServeOptions) -> ServerState {
        ServerState::with_options_clustered(opts, None)
    }

    /// The analysis pool shared by every request.
    pub fn analysis_pool(&self) -> &rtpar::Pool {
        &self.analysis
    }

    /// The admission gauges as the metrics layer consumes them.
    fn admission(&self) -> AdmissionSnapshot {
        AdmissionSnapshot {
            inflight: self.inflight.load(Ordering::SeqCst),
            max_inflight: self.max_inflight,
            shed_total: self.shed_total.load(Ordering::Relaxed),
            open_connections: self.react_stats.connections_open(),
            event_threads: self.react_stats.event_threads() as u64,
        }
    }
}

/// A bound, not-yet-serving analysis server.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    pool: WorkerPool,
    state: Arc<ServerState>,
    config: rtreact::Config,
}

impl Server {
    /// Binds the listener and spawns the worker pool.
    ///
    /// # Errors
    ///
    /// Returns the bind error (bad host, port in use, …) or an invalid
    /// `--poller` value.
    pub fn bind(opts: &ServeOptions) -> io::Result<Server> {
        // A reactor server is expected to hold thousands of sockets;
        // lift the fd ceiling best-effort before the first accept.
        let _ = rtreact::raise_nofile_limit(65_536);
        let listener = TcpListener::bind((opts.host.as_str(), opts.port))?;
        let poller = rtreact::PollerKind::parse(&opts.poller)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?;
        let config = rtreact::Config {
            event_threads: opts.event_threads,
            idle_timeout: opts.idle_timeout_ms.map(Duration::from_millis),
            poller,
            ..rtreact::Config::default()
        };
        // `--threads` sizes both the request pool and the analysis pool
        // requests fan out on; event threads are a separate, small knob.
        Ok(Server {
            listener,
            pool: WorkerPool::new(opts.threads),
            state: Arc::new(ServerState::with_options_clustered(opts, build_cluster(opts)?)),
            config,
        })
    }

    /// The bound address (resolves `--port 0` to the actual port).
    ///
    /// # Errors
    ///
    /// Propagates the OS error for a dead socket.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves until a `shutdown` request arrives, then drains in-flight
    /// work and returns.
    ///
    /// # Errors
    ///
    /// Returns an error only for a dead listener socket or a failed
    /// poller; per-connection failures are contained to their connection.
    pub fn serve(self) -> io::Result<()> {
        let Server { listener, pool, state, config } = self;
        let stats = Arc::clone(&state.react_stats);
        let handler = Arc::new(ReactorHandler { state, pool });
        let result = rtreact::run(listener, handler.clone(), &config, stats);
        // The event loops have exited and dropped their handler clones;
        // dropping ours drains the request pool (any work the reactor's
        // drain timeout abandoned still completes, its responses going to
        // already-closed connections).
        drop(handler);
        result
    }

    /// Binds and serves on a background thread; returns a handle with the
    /// resolved address. Used by tests and embedding callers.
    ///
    /// # Errors
    ///
    /// Returns the bind error.
    pub fn spawn(opts: &ServeOptions) -> io::Result<ServerHandle> {
        let server = Server::bind(opts)?;
        let addr = server.local_addr()?;
        let thread = std::thread::Builder::new()
            .name("rtserver-accept".to_string())
            .spawn(move || server.serve())?;
        Ok(ServerHandle { addr, thread })
    }
}

/// Reads and validates `--cluster`'s peers file into a live
/// [`Cluster`](crate::cluster::Cluster), or `None` without the flag.
///
/// # Errors
///
/// Returns `InvalidInput` for an unreadable/malformed peers file, an
/// out-of-range `--node-id`, or a missing `--node-id`/`--front` choice.
fn build_cluster(opts: &ServeOptions) -> io::Result<Option<Arc<crate::cluster::Cluster>>> {
    let Some(path) = opts.cluster.as_deref() else { return Ok(None) };
    let invalid = |m: String| io::Error::new(io::ErrorKind::InvalidInput, m);
    let text =
        std::fs::read_to_string(path).map_err(|e| invalid(format!("--cluster {path}: {e}")))?;
    let peers = crate::cluster::parse_peers(&text)
        .map_err(|e| invalid(format!("--cluster {path}: {e}")))?;
    let self_index = match (opts.node_id, opts.front) {
        (Some(index), false) => {
            if index >= peers.len() {
                return Err(invalid(format!(
                    "--node-id {index} out of range: {path} declares {} peers",
                    peers.len()
                )));
            }
            Some(index)
        }
        (None, true) => None,
        _ => return Err(invalid("--cluster needs exactly one of --node-id N or --front".into())),
    };
    let config = crate::cluster::ClusterConfig {
        peers,
        self_index,
        peer_deadline: Duration::from_millis(opts.peer_deadline_ms),
    };
    Ok(Some(Arc::new(crate::cluster::Cluster::new(&config))))
}

/// A running background server (see [`Server::spawn`]).
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    thread: JoinHandle<io::Result<()>>,
}

impl ServerHandle {
    /// The resolved listening address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Waits for the server to finish (i.e. for a `shutdown` request).
    ///
    /// # Errors
    ///
    /// Propagates the serve error, or reports a panicked server thread.
    pub fn join(self) -> io::Result<()> {
        self.thread.join().map_err(|_| io::Error::other("server thread panicked"))?
    }
}

/// Binds, prints the listening address, and serves until shutdown. The
/// `trisc serve` entry point.
///
/// # Errors
///
/// Returns bind/listener errors.
pub fn run(opts: &ServeOptions) -> io::Result<()> {
    // With `--trace-out`, keep one rtobs session alive for the daemon's
    // whole life and flush the Chrome trace of everything it served after
    // the drain. Without it, collection stays disabled and free.
    let session = opts.trace_out.as_deref().map(|_| rtobs::begin());
    let server = Server::bind(opts)?;
    println!(
        "rtserver listening on {} ({} event threads, {} request workers, {}-thread analysis pool)",
        server.local_addr()?,
        opts.event_threads,
        opts.threads,
        opts.threads
    );
    println!(
        "admission: max-inflight {}{}{}",
        opts.max_inflight,
        opts.deadline_ms.map_or(String::new(), |ms| format!(", deadline {ms} ms")),
        opts.idle_timeout_ms.map_or(String::new(), |ms| format!(", idle timeout {ms} ms")),
    );
    if let Some(cluster) = server.state.store.cluster() {
        let role =
            cluster.self_index().map_or("stateless front".to_string(), |i| format!("node {i}"));
        println!(
            "rtcluster: {role} of a {}-member ring ({} vnodes/node, peer deadline {} ms, \
             replica capacity {})",
            cluster.ring().len(),
            rtring::DEFAULT_VNODES,
            opts.peer_deadline_ms,
            opts.replica_capacity,
        );
    }
    match opts.slow_ms {
        Some(ms) => println!(
            "rtflight: {}-record ring, capturing span trees of requests >= {ms} ms",
            opts.flight_capacity
        ),
        None => println!(
            "rtflight: {}-record ring (pass --slow-ms MS to capture slow-request span trees)",
            opts.flight_capacity
        ),
    }
    server.serve()?;
    if let (Some(session), Some(path)) = (session, opts.trace_out.as_deref()) {
        session.recorder().write_chrome_trace(Path::new(path))?;
        println!("rtobs trace written to {path}");
    }
    Ok(())
}

/// The bridge between the reactor's event threads and the request pool.
#[derive(Debug)]
struct ReactorHandler {
    state: Arc<ServerState>,
    pool: WorkerPool,
}

impl rtreact::Handler for ReactorHandler {
    fn on_line(&self, line: String, ready: Instant, responder: rtreact::Responder) {
        // Shed on the event thread, before the request costs a pool slot.
        if let Some(response) = try_shed(&self.state, &line) {
            responder.send(response);
            return;
        }
        self.state.inflight.fetch_add(1, Ordering::SeqCst);
        let state = Arc::clone(&self.state);
        self.pool.execute(move || {
            // Run the request with the server's analysis pool installed so
            // nested `rtpar` fan-out inside the analyses lands there.
            let (response, shutdown) =
                state.analysis.install(|| handle_request(&state, &line, ready));
            state.inflight.fetch_sub(1, Ordering::SeqCst);
            let control =
                if shutdown { rtreact::Control::Shutdown } else { rtreact::Control::Continue };
            responder.send_with(response, control);
        });
    }
}

/// The admission fast path, run on the event thread at dispatch: `None`
/// lets the request through. Only analysis-class commands shed — the ops
/// plane (ping, metrics, statusz, journal, flight, shutdown) must stay
/// responsive precisely when the server is overloaded — and malformed
/// lines take the normal path so their error reporting is unchanged.
/// The under-cap case costs one atomic load; parsing happens only once
/// the server is already saturated.
fn try_shed(state: &ServerState, line: &str) -> Option<String> {
    if state.inflight.load(Ordering::SeqCst) < state.max_inflight {
        return None;
    }
    let request = Request::parse(line).ok()?;
    if !request.cmd.is_analysis() {
        return None;
    }
    let endpoint = request.cmd.endpoint();
    state.shed_total.fetch_add(1, Ordering::Relaxed);
    state.metrics.record_shed(endpoint);
    Some(err_response_coded(
        request.id,
        "overloaded",
        &format!(
            "server at capacity ({} requests in flight, --max-inflight {}); retry later",
            state.inflight.load(Ordering::SeqCst),
            state.max_inflight
        ),
    ))
}

/// Executes one request line; returns the response line and whether this
/// request asked the server to shut down. `ready` is the instant the
/// line was fully framed by the reactor, so `ready.elapsed()` at pickup
/// is the readiness-to-dispatch queue wait the flight recorder
/// attributes. Every request — including malformed ones — flies through
/// the always-on [`FlightRecorder`]; with `--slow-ms` set,
/// over-threshold requests additionally land their full span tree in
/// the black box.
fn handle_request(state: &ServerState, line: &str, ready: Instant) -> (String, bool) {
    let started = Instant::now();
    let queue_us = ready.elapsed().as_micros() as u64;
    let request = match Request::parse(line) {
        Ok(request) => request,
        Err(error) => {
            state.flight.begin("invalid", queue_us, false).finish(false);
            state.metrics.record("invalid", false, started.elapsed());
            let response = match error.code {
                Some(code) => err_response_coded(None, code, &error.message),
                None => err_response(None, &error.message),
            };
            return (response, false);
        }
    };
    let endpoint = request.cmd.endpoint();
    let id = request.id;
    // The deadline gate: an analysis request that already waited past its
    // deadline is rejected before any analysis starts — the client has
    // given up on the answer, so computing it would only dig the queue
    // deeper.
    if request.cmd.is_analysis() {
        if let Some(deadline_ms) = request.deadline_ms.or(state.deadline_ms) {
            if queue_us / 1000 >= deadline_ms {
                state.flight.begin(endpoint, queue_us, false).finish(false);
                state.metrics.record_deadline_miss(endpoint);
                state.metrics.record(endpoint, false, started.elapsed());
                return (
                    err_response_coded(
                        id,
                        "deadline_exceeded",
                        &format!(
                            "request waited {} ms, past its {deadline_ms} ms deadline",
                            queue_us / 1000
                        ),
                    ),
                    false,
                );
            }
        }
    }
    let scope = state.flight.begin(endpoint, queue_us, state.slow_ms.is_some());
    let (response, ok, shutdown) = {
        // The whole-request span: the root of a slow request's captured
        // tree, and visible to `--trace-out` recordings too.
        let _request_span = rtobs::span_labeled("request", || endpoint.to_string());
        match &request.cmd {
            Command::Ping => (ok_response(id, "pong"), true, false),
            Command::Metrics => {
                let snapshot = state.metrics.snapshot(
                    &state.store,
                    state.analysis.threads(),
                    state.analysis.background_workers(),
                    &state.admission(),
                );
                (ok_response_with(id, "metrics", snapshot), true, false)
            }
            Command::MetricsProm => {
                let text = state.metrics.prometheus(
                    &state.store,
                    &state.analysis.stats(),
                    &state.flight,
                    state.slow_total.load(Ordering::Relaxed),
                    &state.admission(),
                );
                (ok_response(id, &text), true, false)
            }
            Command::Statusz => (ok_response_with(id, "status", statusz(state)), true, false),
            Command::Journal { n } => {
                let records = state.flight.journal(n.unwrap_or(32) as usize);
                let rows = records.iter().map(record_json).collect();
                (ok_response_with(id, "journal", Json::Arr(rows)), true, false)
            }
            Command::Flight => {
                let flights = state.black_box.lock().expect("black box poisoned");
                let rows = flights.iter().map(flight_json).collect();
                (ok_response_with(id, "flights", Json::Arr(rows)), true, false)
            }
            Command::Shutdown => {
                (ok_response(id, "draining in-flight work, then exiting"), true, true)
            }
            Command::Wcet(payload) => finish(id, run_wcet(payload)),
            Command::Crpd(payload) => finish(id, run_crpd(state, payload)),
            Command::Wcrt(payload) => finish(id, run_wcrt(state, payload)),
            Command::Sim { payload, horizon } => finish(id, run_sim(payload, *horizon)),
            // The streaming commands: on success the "response" is
            // several newline-separated frames, written as one block.
            Command::Explore { payload, grid } => match run_explore(state, id, payload, grid) {
                Ok(frames) => (frames, true, false),
                Err(error) => (err_response(id, &error.to_string()), false, false),
            },
            Command::Batch { items } => {
                let (frames, ok) = run_batch(state, id, items);
                (frames, ok, false)
            }
            Command::PeerGet { name, source, geometry, model } => {
                match run_peer_get(state, id, name, source, *geometry, *model) {
                    Ok(response) => (response, true, false),
                    Err(error) => (err_response(id, &error.to_string()), false, false),
                }
            }
            Command::PeerPut { artifact } => match run_peer_put(state, artifact) {
                Ok(stored) => (
                    ok_response(id, if stored { "stored" } else { "already present" }),
                    true,
                    false,
                ),
                Err(message) => (err_response(id, &message), false, false),
            },
        }
    };
    let finished = scope.finish(ok);
    if let Some(slow_ms) = state.slow_ms {
        if finished.record.total_us >= slow_ms.saturating_mul(1000) {
            state.slow_total.fetch_add(1, Ordering::Relaxed);
            let mut black_box = state.black_box.lock().expect("black box poisoned");
            if black_box.len() == BLACK_BOX_CAP {
                black_box.pop_front();
            }
            black_box.push_back(finished);
        }
    }
    state.metrics.record(endpoint, ok, started.elapsed());
    (response, shutdown)
}

/// A sparse `{stage: value}` object over the [`STAGES`] registry,
/// omitting zero entries.
fn stage_json(values: &[u64]) -> Json {
    Json::Obj(
        STAGES
            .iter()
            .zip(values)
            .filter(|(_, v)| **v != 0)
            .map(|(stage, v)| ((*stage).to_string(), Json::from(*v)))
            .collect(),
    )
}

/// One flight record as a JSON row (journal entries, black-box headers).
fn record_json(record: &FlightRecord) -> Json {
    Json::obj([
        ("id", Json::from(record.id)),
        ("endpoint", Json::from(record.endpoint)),
        ("start_us", Json::from(record.start_us)),
        ("queue_us", Json::from(record.queue_us)),
        ("total_us", Json::from(record.total_us)),
        ("ok", Json::Bool(record.ok)),
        ("stage_ns", stage_json(&record.stage_ns)),
        ("stage_hits", stage_json(&record.stage_hits)),
        ("stage_misses", stage_json(&record.stage_misses)),
        ("spans_dropped", Json::from(record.spans_dropped)),
    ])
}

/// One black-box capture: the record plus its span tree in completion
/// order (`depth` + order reconstructs nesting).
fn flight_json(flight: &FinishedFlight) -> Json {
    let spans: Vec<Json> = flight
        .spans
        .iter()
        .map(|s| {
            Json::obj([
                ("stage", Json::from(s.stage)),
                ("depth", Json::from(u64::from(s.depth))),
                ("start_ns", Json::from(s.start_ns)),
                ("dur_ns", Json::from(s.dur_ns)),
            ])
        })
        .collect();
    Json::obj([("record", record_json(&flight.record)), ("spans", Json::Arr(spans))])
}

/// Executes a `batch` request: every item runs through the analysis
/// pool's indexed fan-out ([`rtpar::par_map_range`]), so results come
/// back in item order deterministically at any pool size. The response
/// is one `result` frame per item plus a final `done` frame, returned as
/// one newline-joined block; the whole request counts as `ok` only when
/// every item succeeded.
fn run_batch(state: &ServerState, id: Option<u64>, items: &[Command]) -> (String, bool) {
    let results: Vec<Result<String, CliError>> = rtpar::par_map_range(items.len(), |i| {
        match &items[i] {
            Command::Wcet(payload) => run_wcet(payload),
            Command::Crpd(payload) => run_crpd(state, payload),
            Command::Wcrt(payload) => run_wcrt(state, payload),
            Command::Sim { payload, horizon } => run_sim(payload, *horizon),
            // The parser admits only the four arms above into a batch.
            other => Err(CliError::Usage(format!("cmd `{}` is not batchable", other.endpoint()))),
        }
    });
    let id_json = || id.map_or(Json::Null, Json::from);
    let mut frames = String::new();
    let mut errors = 0u64;
    for (index, result) in results.iter().enumerate() {
        let payload = match result {
            Ok(output) => ("output", Json::from(output.as_str())),
            Err(error) => {
                errors += 1;
                ("error", Json::from(error.to_string().as_str()))
            }
        };
        let frame = Json::obj([
            ("id", id_json()),
            ("ok", Json::Bool(result.is_ok())),
            ("event", Json::from("result")),
            ("index", Json::from(index as u64)),
            payload,
        ]);
        frames.push_str(&frame.encode());
        frames.push('\n');
    }
    let done = Json::obj([
        ("id", id_json()),
        ("ok", Json::Bool(true)),
        ("event", Json::from("done")),
        ("results", Json::from(results.len() as u64)),
        ("errors", Json::from(errors)),
    ]);
    frames.push_str(&done.encode());
    (frames, errors == 0)
}

/// Answers a peer's `peer_get`: resolve the artifact through the *local*
/// stages (never re-forwarded — this node is the ring owner, or is being
/// used as a last-resort compute host) and ship its wire core back.
///
/// # Errors
///
/// Returns the geometry or pipeline error; the requester falls back to
/// local compute on any error response.
fn run_peer_get(
    state: &ServerState,
    id: Option<u64>,
    name: &str,
    source: &str,
    geometry: (u32, u32, u32),
    model: (u64, u64),
) -> Result<String, CliError> {
    let geometry = rtcache::CacheGeometry::new(geometry.0, geometry.1, geometry.2)
        .map_err(|e| CliError::Options(e.to_string()))?;
    let model = rtwcet::TimingModel { cpi: model.0, miss_penalty: model.1 };
    let artifact = state.store.analyzed_program_local(name, source, geometry, model)?;
    let key = crate::store::AnalysisKey {
        program_hash: crate::store::program_hash(name, source),
        geometry,
        model,
    };
    Ok(crate::cluster::peer_get_response(id, &key, &artifact))
}

/// Lands a peer's `peer_put`: decode/validate the artifact wire object
/// and offer it to the `analyze` store without touching the hit/miss
/// counters (the sender already counted the compute). Returns whether it
/// was stored (`false` when the key was already resident).
fn run_peer_put(state: &ServerState, artifact: &Json) -> Result<bool, String> {
    let (key, artifact) = crate::cluster::artifact_from_json(artifact)?;
    Ok(state.store.analyses().offer(key, std::sync::Arc::new(artifact)))
}

/// The `statusz` payload: liveness, admission gauges, per-endpoint
/// quantiles (with shed and deadline-miss counters merged in), stage
/// wall time and stage-cache hit rates, all from always-on collectors.
fn statusz(state: &ServerState) -> Json {
    let admission_by_endpoint: BTreeMap<String, (u64, u64)> = state
        .metrics
        .admission_by_endpoint()
        .into_iter()
        .map(|(endpoint, shed, deadline_misses)| (endpoint, (shed, deadline_misses)))
        .collect();
    let mut endpoints: BTreeMap<String, Json> = state
        .flight
        .endpoints()
        .into_iter()
        .map(|e| {
            let (shed, deadline_misses) =
                admission_by_endpoint.get(e.endpoint).copied().unwrap_or((0, 0));
            let json = Json::obj([
                ("count", Json::from(e.count)),
                ("errors", Json::from(e.errors)),
                ("shed", Json::from(shed)),
                ("deadline_misses", Json::from(deadline_misses)),
                ("p50_us", Json::from(e.p50_us)),
                ("p90_us", Json::from(e.p90_us)),
                ("p99_us", Json::from(e.p99_us)),
                ("max_us", Json::from(e.max_us)),
            ]);
            (e.endpoint.to_string(), json)
        })
        .collect();
    // An endpoint that has only ever been shed never flew, so it is
    // absent from the flight recorder; surface it anyway.
    for (endpoint, (shed, deadline_misses)) in &admission_by_endpoint {
        endpoints.entry(endpoint.clone()).or_insert_with(|| {
            Json::obj([
                ("count", Json::from(0u64)),
                ("errors", Json::from(0u64)),
                ("shed", Json::from(*shed)),
                ("deadline_misses", Json::from(*deadline_misses)),
                ("p50_us", Json::from(0u64)),
                ("p90_us", Json::from(0u64)),
                ("p99_us", Json::from(0u64)),
                ("max_us", Json::from(0u64)),
            ])
        });
    }
    let stage_ns = state
        .flight
        .stage_totals()
        .into_iter()
        .filter(|(_, ns)| *ns != 0)
        .map(|(stage, ns)| (stage.to_string(), Json::from(ns)))
        .collect();
    let stage_cache = state
        .store
        .stage_stats()
        .into_iter()
        .map(|s| {
            let lookups = s.hits + s.misses;
            let hit_rate = if lookups == 0 { 0.0 } else { s.hits as f64 / lookups as f64 };
            let json = Json::obj([
                ("hits", Json::from(s.hits)),
                ("misses", Json::from(s.misses)),
                ("hit_rate", Json::Num((hit_rate * 1e4).round() / 1e4)),
            ]);
            (s.stage.to_string(), json)
        })
        .collect();
    let admission = state.admission();
    let peer = {
        let cluster = state.store.cluster();
        let stats = cluster.map(|c| c.stats()).unwrap_or_default();
        // A single-node server is its own one-member "ring".
        let ring_nodes = cluster.map_or(1, |c| c.ring().len() as u64);
        let ring_self = match cluster {
            None => Json::from("single"),
            Some(c) => c.self_index().map_or(Json::from("front"), |i| Json::from(i as u64)),
        };
        Json::obj([
            ("fetch_hits", Json::from(stats.hits)),
            ("fetch_misses", Json::from(stats.misses)),
            ("fetch_timeouts", Json::from(stats.timeouts)),
            ("fallbacks", Json::from(stats.fallbacks())),
            ("puts", Json::from(stats.puts)),
            ("ring_owned_keys", Json::from(state.store.ring_owned_keys())),
            ("ring_nodes", Json::from(ring_nodes)),
            ("ring_self", ring_self),
        ])
    };
    Json::obj([
        ("uptime_secs", Json::from(state.flight.uptime_secs())),
        ("peer", peer),
        ("inflight", Json::from(admission.inflight)),
        ("max_inflight", Json::from(admission.max_inflight)),
        ("shed_total", Json::from(admission.shed_total)),
        ("open_connections", Json::from(admission.open_connections)),
        ("event_threads", Json::from(admission.event_threads)),
        ("records_total", Json::from(state.flight.records_total())),
        ("flight_capacity", Json::from(state.flight.capacity() as u64)),
        ("slow_ms", state.slow_ms.map_or(Json::Null, Json::from)),
        ("slow_captures", Json::from(state.slow_total.load(Ordering::Relaxed))),
        ("endpoints", Json::Obj(endpoints)),
        ("stage_ns", Json::Obj(stage_ns)),
        ("stage_cache", Json::Obj(stage_cache)),
    ])
}

fn finish(id: Option<u64>, result: Result<String, CliError>) -> (String, bool, bool) {
    match result {
        Ok(output) => (ok_response(id, &output), true, false),
        Err(error) => (err_response(id, &error.to_string()), false, false),
    }
}

/// Parses the payload's spec with an empty base dir, leaving task `FILE`
/// fields as the literal keys the `sources` map uses.
fn parse_spec(payload: &SpecPayload) -> Result<SystemSpec, CliError> {
    SystemSpec::parse(&payload.spec, Path::new(""))
}

/// A task's source text: the inline `sources` entry if present, else the
/// server's filesystem.
fn resolve_source(payload: &SpecPayload, task: &SpecTask) -> Result<String, CliError> {
    let key = task.source.to_string_lossy();
    if let Some(text) = payload.sources.get(key.as_ref()) {
        return Ok(text.clone());
    }
    std::fs::read_to_string(&task.source)
        .map_err(|e| CliError::Io(format!("{}: {e}", task.source.display())))
}

fn run_wcet(payload: &SpecPayload) -> Result<String, CliError> {
    let spec = parse_spec(payload)?;
    let mut out = String::new();
    for task in &spec.tasks {
        out.push_str(&cmd_wcet(&task.name, &resolve_source(payload, task)?, &spec.cache)?);
    }
    Ok(out)
}

fn run_crpd(state: &ServerState, payload: &SpecPayload) -> Result<String, CliError> {
    let spec = parse_spec(payload)?;
    let [preempted_task, preempting_task] = spec.tasks.as_slice() else {
        return Err(CliError::Spec(
            "crpd needs exactly two task lines: the preempted task, then the preempting task"
                .into(),
        ));
    };
    let geometry = spec.cache.geometry()?;
    let model = spec.cache.model();
    // Mirror the one-shot CLI exactly (`cmd_crpd`): pair analysis uses
    // pseudo-parameters — unbounded period, priorities 2 (preempted) and
    // 1 (preempting) — so the server's report is byte-identical.
    let memoized = |task: &SpecTask, priority: u32| -> Result<AnalyzedTask, CliError> {
        state.store.analyzed(
            &task.name,
            &resolve_source(payload, task)?,
            TaskParams { period: u64::MAX, priority },
            geometry,
            model,
        )
    };
    let (preempted, preempting) =
        rtpar::join(|| memoized(preempted_task, 2), || memoized(preempting_task, 1));
    Ok(cmd_crpd_with(&preempted?, &preempting?, &spec.cache))
}

fn run_wcrt(state: &ServerState, payload: &SpecPayload) -> Result<String, CliError> {
    let spec = parse_spec(payload)?;
    let geometry = spec.cache.geometry()?;
    let model = spec.cache.model();
    // Analyze all tasks of the request in parallel; results (and the
    // first error, if any) are taken in task order, so the rendered
    // report is byte-identical at any pool size.
    let tasks: Vec<AnalyzedTask> = rtpar::par_map_range(spec.tasks.len(), |i| {
        let task = &spec.tasks[i];
        state.store.analyzed(
            &task.name,
            &resolve_source(payload, task)?,
            TaskParams { period: task.period, priority: task.priority },
            geometry,
            model,
        )
    })
    .into_iter()
    .collect::<Result<_, _>>()?;
    // The pairwise CRPD bounds come from the store's shared cell cache,
    // so repeated (or param-tweaked) requests reuse them.
    cmd_wcrt_cached(&spec, &tasks, state.store.cells())
}

fn run_sim(payload: &SpecPayload, horizon: Option<u64>) -> Result<String, CliError> {
    let spec = parse_spec(payload)?;
    let programs = spec.programs_with(&mut |task| resolve_source(payload, task))?;
    cmd_sim_with(&spec, &programs, horizon)
}

/// Runs a design-space sweep against the server's shared artifact store
/// and returns the streamed NDJSON frames (one per evaluated batch plus
/// the final front frame) as a newline-separated block.
///
/// The sweep's analysis provider is [`ArtifactStore::analyzed_program`],
/// so points share `assemble`/`analyze` artifacts — and `crpd_cell`
/// entries — with every other request the server has served, with
/// single-flight deduplication across concurrent sweeps.
fn run_explore(
    state: &ServerState,
    id: Option<u64>,
    payload: &SpecPayload,
    grid_text: &str,
) -> Result<String, CliError> {
    let spec = parse_spec(payload)?;
    let grid = rtexplore::Grid::parse(grid_text)?;
    let plan = rtexplore::Plan::new(&spec, &grid)?;
    let sources: Vec<(String, String)> = spec
        .tasks
        .iter()
        .map(|task| Ok((task.name.clone(), resolve_source(payload, task)?)))
        .collect::<Result<_, CliError>>()?;
    let provider = |task: usize, geometry, model| {
        let (name, source) = &sources[task];
        state.store.analyzed_program(name, source, geometry, model)
    };
    let id_json = || id.map_or(Json::Null, Json::from);
    let mut frames = String::new();
    let outcome = rtexplore::run_sweep(&plan, &provider, state.store.cells(), |batch, front| {
        let points: Vec<Json> = batch
            .iter()
            .map(|point| {
                Json::obj([
                    ("index", Json::from(point.config.index as u64)),
                    ("schedulable", Json::Bool(point.schedulable)),
                    ("row", Json::from(rtexplore::render_point(point).as_str())),
                ])
            })
            .collect();
        let frame = Json::obj([
            ("id", id_json()),
            ("ok", Json::Bool(true)),
            ("event", Json::from("points")),
            ("points", Json::Arr(points)),
            ("front_size", Json::from(front.len() as u64)),
        ]);
        frames.push_str(&frame.encode());
        frames.push('\n');
    })?;
    state.metrics.record_explore(outcome.points as u64, outcome.front.len() as u64);
    let output = rtexplore::explain_front(&plan, &provider, state.store.cells(), &outcome.front)?;
    let front: Vec<Json> =
        outcome.front.members().iter().map(|m| Json::from(m.config.index as u64)).collect();
    let done = Json::obj([
        ("id", id_json()),
        ("ok", Json::Bool(true)),
        ("event", Json::from("done")),
        ("points_total", Json::from(outcome.points as u64)),
        ("front", Json::Arr(front)),
        ("front_size", Json::from(outcome.front.len() as u64)),
        ("output", Json::from(output.as_str())),
    ]);
    frames.push_str(&done.encode());
    Ok(frames)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;
    use std::io::{BufRead, BufReader, BufWriter, Write};
    use std::net::TcpStream;

    const TASK_A: &str = ".data 0x100000\nbuf: .word 1,2,3\n.text 0x1000\nstart: li r1, buf\nld r2, 0(r1)\nld r2, 0(r1)\nhalt\n";
    const TASK_B: &str =
        ".data 0x100400\nbuf: .word 7\n.text 0x2000\nstart: li r1, buf\nld r2, 0(r1)\nhalt\n";

    fn spawn() -> ServerHandle {
        let opts = ServeOptions {
            host: "127.0.0.1".into(),
            port: 0,
            threads: 2,
            trace_out: None,
            ..ServeOptions::default()
        };
        Server::spawn(&opts).expect("bind on an ephemeral port")
    }

    fn roundtrip(addr: SocketAddr, lines: &[String]) -> Vec<Json> {
        let stream = TcpStream::connect(addr).expect("connect");
        let mut writer = BufWriter::new(stream.try_clone().expect("clone"));
        let mut reader = BufReader::new(stream);
        lines
            .iter()
            .map(|line| {
                writeln!(writer, "{line}").and_then(|()| writer.flush()).expect("send");
                let mut response = String::new();
                reader.read_line(&mut response).expect("recv");
                Json::parse(response.trim_end()).expect("response is json")
            })
            .collect()
    }

    fn wcrt_request(id: u64) -> String {
        Json::obj([
            ("id", Json::from(id)),
            ("cmd", Json::from("wcrt")),
            (
                "spec",
                Json::from(
                    "cache 64 2 16\ncmiss 20\nccs 50\ntask hi a.s 5000 1\ntask lo b.s 50000 2\n",
                ),
            ),
            ("sources", Json::obj([("a.s", Json::from(TASK_A)), ("b.s", Json::from(TASK_B))])),
        ])
        .encode()
    }

    fn shutdown_and_join(handle: ServerHandle) {
        let replies = roundtrip(handle.addr(), &[r#"{"cmd":"shutdown"}"#.to_string()]);
        assert_eq!(replies[0].get("ok").unwrap().as_bool(), Some(true));
        handle.join().expect("clean exit");
    }

    #[test]
    fn ping_errors_and_shutdown() {
        let handle = spawn();
        let replies = roundtrip(
            handle.addr(),
            &[
                r#"{"id":1,"cmd":"ping"}"#.to_string(),
                "{not json".to_string(),
                r#"{"id":2,"cmd":"crpd","spec":"task a a.s 1 1\n","sources":{"a.s":"halt\n"}}"#
                    .to_string(),
            ],
        );
        assert_eq!(replies[0].get("output").unwrap().as_str(), Some("pong"));
        assert_eq!(replies[0].get("id").unwrap().as_u64(), Some(1));
        assert_eq!(replies[1].get("ok").unwrap().as_bool(), Some(false));
        let crpd_error = replies[2].get("error").unwrap().as_str().unwrap();
        assert!(crpd_error.contains("exactly two task lines"), "{crpd_error}");
        shutdown_and_join(handle);
    }

    #[test]
    fn wcrt_is_memoized_and_matches_the_one_shot_cli() {
        let handle = spawn();
        let replies = roundtrip(
            handle.addr(),
            &[wcrt_request(1), wcrt_request(2), r#"{"cmd":"metrics"}"#.to_string()],
        );
        let first = replies[0].get("output").unwrap().as_str().unwrap();
        let second = replies[1].get("output").unwrap().as_str().unwrap();
        assert_eq!(first, second, "repeated requests must render identically");

        // Byte-identical to the in-process one-shot path.
        let dir = std::env::temp_dir().join(format!("rtserver-wcrt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("a.s"), TASK_A).unwrap();
        std::fs::write(dir.join("b.s"), TASK_B).unwrap();
        std::fs::write(
            dir.join("sys.spec"),
            "cache 64 2 16\ncmiss 20\nccs 50\ntask hi a.s 5000 1\ntask lo b.s 50000 2\n",
        )
        .unwrap();
        let spec = SystemSpec::load(&dir.join("sys.spec")).unwrap();
        assert_eq!(first, rtcli::cmd_wcrt(&spec).unwrap());
        std::fs::remove_dir_all(&dir).ok();

        let metrics = replies[2].get("metrics").unwrap();
        let cache = metrics.get("artifact_cache").unwrap();
        assert_eq!(cache.get("hits").unwrap().as_u64(), Some(2), "second request hits both tasks");
        assert_eq!(cache.get("misses").unwrap().as_u64(), Some(2));
        let wcrt = metrics.get("endpoints").unwrap().get("wcrt").unwrap();
        assert_eq!(wcrt.get("requests").unwrap().as_u64(), Some(2));
        shutdown_and_join(handle);
    }

    #[test]
    fn explore_streams_point_frames_then_a_front() {
        let handle = spawn();
        let request = Json::obj([
            ("id", Json::from(9u64)),
            ("cmd", Json::from("explore")),
            (
                "spec",
                Json::from(
                    "cache 64 2 16\ncmiss 20\nccs 50\ntask hi a.s 5000 1\ntask lo b.s 50000 2\n",
                ),
            ),
            ("grid", Json::from("sets 32 64\nways 1 2\napproach all\n")),
            ("sources", Json::obj([("a.s", Json::from(TASK_A)), ("b.s", Json::from(TASK_B))])),
        ])
        .encode();
        let stream = TcpStream::connect(handle.addr()).expect("connect");
        let mut writer = BufWriter::new(stream.try_clone().expect("clone"));
        let mut reader = BufReader::new(stream);
        writeln!(writer, "{request}").and_then(|()| writer.flush()).expect("send");
        // Read frames until the terminal `done` frame.
        let mut point_count = 0;
        let done = loop {
            let mut line = String::new();
            reader.read_line(&mut line).expect("recv");
            let frame = Json::parse(line.trim_end()).expect("frame is json");
            assert_eq!(frame.get("ok").unwrap().as_bool(), Some(true), "{line}");
            assert_eq!(frame.get("id").unwrap().as_u64(), Some(9));
            match frame.get("event").unwrap().as_str().unwrap() {
                "points" => {
                    let Some(Json::Arr(points)) = frame.get("points") else {
                        panic!("points frame without points: {line}")
                    };
                    for point in points {
                        assert_eq!(point.get("index").unwrap().as_u64(), Some(point_count));
                        assert!(point
                            .get("row")
                            .unwrap()
                            .as_str()
                            .unwrap()
                            .starts_with(&format!("point {point_count} ")));
                        point_count += 1;
                    }
                }
                "done" => break frame,
                other => panic!("unexpected event `{other}`"),
            }
        };
        assert_eq!(done.get("points_total").unwrap().as_u64(), Some(16));
        assert_eq!(point_count, 16, "every point streamed before done");
        let front_size = done.get("front_size").unwrap().as_u64().unwrap();
        assert!(front_size >= 1);
        let output = done.get("output").unwrap().as_str().unwrap();
        assert!(output.contains("Pareto front ("), "{output}");
        assert!(output.contains("binding task `"), "{output}");

        // The sweep shows up in the metrics snapshot, and its artifacts
        // landed in the shared store (4 geometries x 2 tasks analyses).
        writeln!(writer, r#"{{"cmd":"metrics"}}"#).and_then(|()| writer.flush()).expect("send");
        let mut line = String::new();
        reader.read_line(&mut line).expect("recv");
        let metrics = Json::parse(line.trim_end()).unwrap();
        let explore = metrics.get("metrics").unwrap().get("explore").unwrap();
        assert_eq!(explore.get("points_total").unwrap().as_u64(), Some(16));
        assert_eq!(explore.get("front_size").unwrap().as_u64(), Some(front_size));
        let stages = metrics.get("metrics").unwrap().get("stages").unwrap();
        assert_eq!(stages.get("analyze").unwrap().get("entries").unwrap().as_u64(), Some(8));
        assert_eq!(stages.get("assemble").unwrap().get("entries").unwrap().as_u64(), Some(2));
        drop(writer);
        drop(reader);
        shutdown_and_join(handle);
    }

    #[test]
    fn sim_and_wcet_render_over_inline_sources() {
        let handle = spawn();
        let sim = Json::obj([
            ("cmd", Json::from("sim")),
            ("horizon", Json::from(60_000u64)),
            (
                "spec",
                Json::from(
                    "cache 64 2 16\ncmiss 20\nccs 50\ntask hi a.s 5000 1\ntask lo b.s 50000 2\n",
                ),
            ),
            ("sources", Json::obj([("a.s", Json::from(TASK_A)), ("b.s", Json::from(TASK_B))])),
        ])
        .encode();
        let wcet = Json::obj([
            ("cmd", Json::from("wcet")),
            ("spec", Json::from("cache 64 2 16\ntask hi a.s 5000 1\n")),
            ("sources", Json::obj([("a.s", Json::from(TASK_A))])),
        ])
        .encode();
        let replies = roundtrip(handle.addr(), &[sim, wcet]);
        let sim_out = replies[0].get("output").unwrap().as_str().unwrap();
        assert!(sim_out.contains("max response"), "{sim_out}");
        let wcet_out = replies[1].get("output").unwrap().as_str().unwrap();
        assert!(wcet_out.contains("WCET ="), "{wcet_out}");
        shutdown_and_join(handle);
    }
}
