//! A fixed-size worker thread pool over an [`mpsc`] channel.
//!
//! Analysis requests are CPU-bound, so the pool is sized once at startup
//! (`trisc serve --threads N`). The reactor's event threads frame lines
//! off thousands of connections and hand each request here as one job;
//! workers pull jobs from a shared receiver and write the response back
//! through the reactor's completion queue. Dropping the pool closes the
//! channel, lets every queued and in-flight job finish, and joins the
//! threads — which is exactly the drain the server's graceful shutdown
//! needs.

use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// The pool. Dropping it drains queued jobs and joins all workers.
#[derive(Debug)]
pub struct WorkerPool {
    sender: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `threads` workers.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn new(threads: usize) -> Self {
        assert!(threads > 0, "a worker pool needs at least one thread");
        let (sender, receiver) = mpsc::channel::<Job>();
        let receiver = Arc::new(Mutex::new(receiver));
        let workers = (0..threads)
            .map(|i| {
                let receiver: Arc<Mutex<Receiver<Job>>> = Arc::clone(&receiver);
                std::thread::Builder::new()
                    .name(format!("rtserver-worker-{i}"))
                    .spawn(move || loop {
                        // Hold the lock only while dequeueing, not while
                        // running the job, or the pool would serialize.
                        let job = receiver.lock().expect("pool lock").recv();
                        match job {
                            Ok(job) => job(),
                            Err(_) => break, // channel closed: drain done
                        }
                    })
                    .expect("spawning a worker thread")
            })
            .collect();
        WorkerPool { sender: Some(sender), workers }
    }

    /// Queues `job`; some idle worker will run it.
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) {
        if let Some(sender) = &self.sender {
            // Send can only fail when every worker has exited, which only
            // happens after drain(); jobs submitted that late are dropped.
            let _ = sender.send(Box::new(job));
        }
    }

    /// Closes the queue, waits for every queued and in-flight job, and
    /// joins the workers.
    pub fn drain(&mut self) {
        self.sender.take(); // closing the channel stops `recv` loops
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.drain();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    fn runs_jobs_concurrently() {
        let pool = WorkerPool::new(4);
        let running = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        for _ in 0..8 {
            let running = Arc::clone(&running);
            let peak = Arc::clone(&peak);
            pool.execute(move || {
                let now = running.fetch_add(1, Ordering::SeqCst) + 1;
                peak.fetch_max(now, Ordering::SeqCst);
                std::thread::sleep(Duration::from_millis(30));
                running.fetch_sub(1, Ordering::SeqCst);
            });
        }
        drop(pool); // drains
        assert!(peak.load(Ordering::SeqCst) > 1, "jobs never overlapped");
    }

    #[test]
    fn drop_waits_for_queued_jobs() {
        let done = Arc::new(AtomicUsize::new(0));
        let pool = WorkerPool::new(2);
        for _ in 0..16 {
            let done = Arc::clone(&done);
            pool.execute(move || {
                std::thread::sleep(Duration::from_millis(5));
                done.fetch_add(1, Ordering::SeqCst);
            });
        }
        drop(pool);
        assert_eq!(done.load(Ordering::SeqCst), 16, "drain must not drop queued jobs");
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_is_a_bug() {
        let _ = WorkerPool::new(0);
    }
}
