//! The content-addressed artifact DAG behind the analysis server.
//!
//! The pipeline is staged — assemble → per-path trace/RMB-LMB → CIIP
//! footprints → WCET → pairwise CRPD bounds → WCRT recurrence — and each
//! stage's artifact is memoized under a key built from exactly what that
//! stage depends on:
//!
//! | stage       | artifact                    | key                               |
//! |-------------|-----------------------------|-----------------------------------|
//! | `assemble`  | [`Program`]                 | `hash128(name, source)`           |
//! | `analyze`   | [`AnalyzedProgram`]         | `(program_hash, geometry, model)` |
//! | `crpd_cell` | reload bound (lines)        | `(approach, prog_a, prog_b)`      |
//!
//! Scheduling parameters appear in **no** key: a period or priority edit
//! rebinds the cached [`AnalyzedProgram`] ([`crpd::AnalyzedTask::bind`],
//! O(1)) and re-runs only the WCRT fixpoint. A source edit re-keys all
//! three stages; a geometry/model edit re-keys `analyze` and (through the
//! artifact fingerprints) `crpd_cell` while reusing `assemble`.
//!
//! Each [`StageStore`] is *single-flight*: concurrent requests for one
//! key elect a leader under the map lock, the leader computes outside the
//! lock, and everyone else blocks on a condvar until the artifact (an
//! [`Arc`], shared without copying) is ready. Results are immutable once
//! computed (the analysis is deterministic; see `crpd::intra`'s ordered
//! sweeps), so no invalidation is ever needed: changed content simply
//! hashes to a new key, and stale keys age out only when the server
//! restarts.
//!
//! Failed stages are *not* cached: the in-flight slot is cleared so a
//! later request retries — errors are cheap to recompute and callers may
//! fix the environment (e.g. a missing include path) between requests.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use crpd::{AnalyzedProgram, AnalyzedTask, CrpdCellCache, TaskParams};
use rtcache::CacheGeometry;
use rtcli::CliError;
use rtprogram::Program;
use rtwcet::TimingModel;

/// 128-bit content hash of a task's name and assembly source — the
/// `assemble` stage key. Two independent FNV-1a streams over
/// length-prefixed fields (see [`crpd::content_hash128`]), so
/// `("ab", "c")` and `("a", "bc")` hash differently and collisions are
/// birthday-bound far beyond any realistic artifact population.
pub fn program_hash(name: &str, source: &str) -> u128 {
    crpd::content_hash128([name.as_bytes(), source.as_bytes()])
}

/// The `analyze` stage key: everything an [`AnalyzedProgram`] depends on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AnalysisKey {
    /// [`program_hash`] of the task name and source text.
    pub program_hash: u128,
    /// Cache geometry analyzed under.
    pub geometry: CacheGeometry,
    /// Timing model analyzed under.
    pub model: TimingModel,
}

/// Hit/miss/entry counters of one stage, for `metrics`/`metrics_prom`.
#[derive(Debug, Clone, Copy)]
pub struct StageStats {
    /// Stage name (`"assemble"`, `"analyze"`, `"crpd_cell"`).
    pub stage: &'static str,
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that ran the stage (single-flight leaders only).
    pub misses: u64,
    /// Distinct artifacts currently held.
    pub entries: u64,
    /// Lookups that blocked on another thread's in-flight computation.
    pub single_flight_waits: u64,
}

enum Slot<V> {
    /// A leader is computing this key; waiters block on the condvar.
    InFlight,
    /// The artifact, shared without copying.
    Ready(Arc<V>),
}

/// One memoized pipeline stage: a content-keyed map with single-flight
/// deduplication and hit/miss counters.
///
/// `get_or_compute` elects exactly one *leader* per missing key (under
/// the map lock), so concurrent requests for the same key run the stage
/// once; the others wait and then share the leader's `Arc`. A leader
/// that fails (or panics) clears its slot, so errors are never cached
/// and waiters retry — possibly becoming the next leader.
pub struct StageStore<K, V> {
    stage: &'static str,
    entries: Mutex<HashMap<K, Slot<V>>>,
    ready: Condvar,
    hits: AtomicU64,
    misses: AtomicU64,
    waits: AtomicU64,
    /// Ready-entry cap; inserting past it evicts an arbitrary other
    /// ready entry. `None` (every pipeline stage) never evicts — only
    /// the cluster replica store is bounded, since replicas are a pure
    /// cache over artifacts some other node owns.
    capacity: Option<usize>,
}

impl<K: Eq + Hash + Clone, V> StageStore<K, V> {
    fn new(stage: &'static str) -> Self {
        StageStore {
            stage,
            entries: Mutex::new(HashMap::new()),
            ready: Condvar::new(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            waits: AtomicU64::new(0),
            capacity: None,
        }
    }

    /// A store that holds at most `capacity` ready artifacts, evicting
    /// an arbitrary resident entry on overflow. Eviction only affects
    /// cache residency (an evicted key recomputes or refetches), never
    /// results.
    pub fn with_capacity(stage: &'static str, capacity: usize) -> Self {
        let mut store = StageStore::new(stage);
        store.capacity = Some(capacity.max(1));
        store
    }

    /// Returns the memoized artifact for `key`, running `compute` (as the
    /// single-flight leader, outside the map lock) on first use.
    ///
    /// Exactly one concurrent caller per key counts a miss and computes;
    /// the rest count a hit (plus a single-flight wait if they had to
    /// block). Every lookup is also recorded with
    /// [`rtobs::record_stage_lookup`] under this store's stage name.
    ///
    /// # Errors
    ///
    /// Propagates `compute`'s error to the leader; the slot is cleared so
    /// the key stays uncached and waiters retry.
    pub fn get_or_compute<E>(
        &self,
        key: K,
        compute: impl FnOnce() -> Result<V, E>,
    ) -> Result<Arc<V>, E> {
        let mut waited = false;
        {
            let mut entries = self.entries.lock().expect("stage store lock");
            loop {
                match entries.get(&key) {
                    Some(Slot::Ready(artifact)) => {
                        self.hits.fetch_add(1, Ordering::Relaxed);
                        rtobs::record_stage_lookup(self.stage, true);
                        return Ok(Arc::clone(artifact));
                    }
                    Some(Slot::InFlight) => {
                        if !waited {
                            waited = true;
                            self.waits.fetch_add(1, Ordering::Relaxed);
                        }
                        entries = self.ready.wait(entries).expect("stage store lock");
                    }
                    None => {
                        entries.insert(key.clone(), Slot::InFlight);
                        self.misses.fetch_add(1, Ordering::Relaxed);
                        rtobs::record_stage_lookup(self.stage, false);
                        break;
                    }
                }
            }
        }
        // Leader path: compute outside the lock so distinct keys proceed
        // in parallel. The guard clears the in-flight slot on error *or*
        // panic, so waiters never deadlock on an abandoned slot.
        let mut guard = InFlightGuard { store: self, key: Some(key) };
        let artifact = Arc::new(compute()?);
        let key = guard.key.take().expect("leader key");
        let mut entries = self.entries.lock().expect("stage store lock");
        entries.insert(key.clone(), Slot::Ready(Arc::clone(&artifact)));
        Self::enforce_capacity(&mut entries, self.capacity, &key);
        drop(entries);
        self.ready.notify_all();
        Ok(artifact)
    }

    /// Inserts an externally produced artifact if the key is vacant
    /// (never overwriting a ready value or racing a leader), without
    /// touching the hit/miss counters. Returns whether it was stored.
    ///
    /// This is the landing half of the cluster's `peer_put`: the value
    /// was computed (and counted) on another node, so recording a miss
    /// here would double-count the cluster-wide recompute total.
    pub fn offer(&self, key: K, value: Arc<V>) -> bool {
        let mut entries = self.entries.lock().expect("stage store lock");
        if entries.contains_key(&key) {
            return false;
        }
        entries.insert(key.clone(), Slot::Ready(value));
        Self::enforce_capacity(&mut entries, self.capacity, &key);
        true
    }

    /// The keys of every ready artifact (order unspecified).
    pub fn keys(&self) -> Vec<K> {
        let entries = self.entries.lock().expect("stage store lock");
        entries
            .iter()
            .filter(|(_, slot)| matches!(slot, Slot::Ready(_)))
            .map(|(k, _)| k.clone())
            .collect()
    }

    /// Evicts arbitrary ready entries (sparing `keep`) until the ready
    /// count fits `capacity`. Called with the map lock held.
    fn enforce_capacity(entries: &mut HashMap<K, Slot<V>>, capacity: Option<usize>, keep: &K) {
        let Some(capacity) = capacity else { return };
        loop {
            let ready = entries.values().filter(|s| matches!(s, Slot::Ready(_))).count();
            if ready <= capacity {
                return;
            }
            let victim = entries
                .iter()
                .find(|(k, slot)| matches!(slot, Slot::Ready(_)) && *k != keep)
                .map(|(k, _)| k.clone());
            match victim {
                Some(k) => {
                    entries.remove(&k);
                }
                None => return,
            }
        }
    }

    /// Number of lookups served from the cache so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of lookups that ran the stage (single-flight leaders).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of lookups that blocked on another thread's computation.
    pub fn single_flight_waits(&self) -> u64 {
        self.waits.load(Ordering::Relaxed)
    }

    /// Number of ready artifacts currently held.
    pub fn len(&self) -> usize {
        let entries = self.entries.lock().expect("stage store lock");
        entries.values().filter(|slot| matches!(slot, Slot::Ready(_))).count()
    }

    /// `true` if no artifact is ready yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// This stage's counters as one [`StageStats`] row.
    pub fn stats(&self) -> StageStats {
        StageStats {
            stage: self.stage,
            hits: self.hits(),
            misses: self.misses(),
            entries: self.len() as u64,
            single_flight_waits: self.single_flight_waits(),
        }
    }
}

impl<K, V> std::fmt::Debug for StageStore<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StageStore")
            .field("stage", &self.stage)
            .field("hits", &self.hits.load(Ordering::Relaxed))
            .field("misses", &self.misses.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

struct InFlightGuard<'a, K: Eq + Hash + Clone, V> {
    store: &'a StageStore<K, V>,
    key: Option<K>,
}

impl<K: Eq + Hash + Clone, V> Drop for InFlightGuard<'_, K, V> {
    fn drop(&mut self) {
        if let Some(key) = self.key.take() {
            let mut entries = self.store.entries.lock().expect("stage store lock");
            entries.remove(&key);
            drop(entries);
            self.store.ready.notify_all();
        }
    }
}

/// Routing key for cluster sharding: a hash of everything in an
/// [`AnalysisKey`], fed to the consistent-hash ring. Derived with the
/// same length-prefixed 128-bit content hash as [`program_hash`], so
/// every node (whatever its thread count or start order) maps a key to
/// the same owner.
pub fn route_key(key: &AnalysisKey) -> u128 {
    crpd::content_hash128([
        key.program_hash.to_le_bytes().as_slice(),
        format!("{:?}", key.geometry).as_bytes(),
        format!("{:?}", key.model).as_bytes(),
    ])
}

/// Default bound on the cluster replica store (artifacts fetched from
/// peers); owned artifacts are never evicted.
pub const DEFAULT_REPLICA_CAPACITY: usize = 256;

/// The server's artifact DAG: per-stage single-flight stores plus the
/// shared CRPD pairwise-cell cache.
///
/// In cluster mode the `analyze` stage is sharded: each key has one
/// *owner* node (consistent hashing over [`route_key`]), and only the
/// owner caches it in `analyses`. Other nodes hold a fetched copy in
/// the bounded `replicas` store, which is why per-node peak memory
/// drops roughly `N`× while the cluster-wide recompute count matches a
/// single node's.
#[derive(Debug)]
pub struct ArtifactStore {
    programs: StageStore<u128, Program>,
    analyses: StageStore<AnalysisKey, AnalyzedProgram>,
    /// Bounded cache of artifacts owned by *other* nodes; unused (and
    /// empty) outside cluster mode.
    replicas: StageStore<AnalysisKey, AnalyzedProgram>,
    cells: CrpdCellCache,
    cluster: Option<Arc<crate::cluster::Cluster>>,
}

impl Default for ArtifactStore {
    fn default() -> Self {
        ArtifactStore {
            programs: StageStore::new("assemble"),
            analyses: StageStore::new("analyze"),
            replicas: StageStore::with_capacity("peer_replica", DEFAULT_REPLICA_CAPACITY),
            cells: CrpdCellCache::default(),
            cluster: None,
        }
    }
}

impl ArtifactStore {
    /// Returns the task bound to `params` over the memoized
    /// [`AnalyzedProgram`] for `(name, source, geometry, model)`,
    /// assembling and analyzing only on first use.
    ///
    /// Params are bound *after* the cache: a request differing only in
    /// period/priority hits both the `assemble` and `analyze` stages and
    /// re-runs zero pipeline spans.
    ///
    /// # Errors
    ///
    /// Returns [`CliError::Asm`] or [`CliError::Analysis`] from the
    /// underlying pipeline; errors are never cached.
    pub fn analyzed(
        &self,
        name: &str,
        source: &str,
        params: TaskParams,
        geometry: CacheGeometry,
        model: TimingModel,
    ) -> Result<AnalyzedTask, CliError> {
        Ok(AnalyzedTask::bind(self.analyzed_program(name, source, geometry, model)?, params))
    }

    /// The params-free half of [`analyzed`]: the memoized
    /// [`AnalyzedProgram`] for `(name, source, geometry, model)`. This is
    /// the provider surface `explore` sweeps bind against — every sweep
    /// point rebinds these shared artifacts with its own scheduling
    /// parameters, so the whole grid shares one `assemble`/`analyze` run
    /// per unique key.
    ///
    /// # Errors
    ///
    /// Returns [`CliError::Asm`] or [`CliError::Analysis`] from the
    /// underlying pipeline; errors are never cached.
    ///
    /// [`analyzed`]: ArtifactStore::analyzed
    pub fn analyzed_program(
        &self,
        name: &str,
        source: &str,
        geometry: CacheGeometry,
        model: TimingModel,
    ) -> Result<Arc<AnalyzedProgram>, CliError> {
        let key = AnalysisKey { program_hash: program_hash(name, source), geometry, model };
        if let Some(cluster) = &self.cluster {
            if !cluster.owns(route_key(&key)) {
                return self.replicated_program(cluster, &key, name, source);
            }
        }
        self.analyzed_program_local(name, source, geometry, model)
    }

    /// [`analyzed_program`] without cluster routing: always resolves
    /// through the local `assemble`/`analyze` stores. This is what the
    /// `peer_get` handler calls — the owner must answer from its own
    /// stages, never forward the key onward.
    ///
    /// # Errors
    ///
    /// Returns [`CliError::Asm`] or [`CliError::Analysis`] from the
    /// underlying pipeline; errors are never cached.
    ///
    /// [`analyzed_program`]: ArtifactStore::analyzed_program
    pub fn analyzed_program_local(
        &self,
        name: &str,
        source: &str,
        geometry: CacheGeometry,
        model: TimingModel,
    ) -> Result<Arc<AnalyzedProgram>, CliError> {
        let hash = program_hash(name, source);
        let program = self.programs.get_or_compute(hash, || {
            let _span = rtobs::span_labeled("assemble", || name.to_string());
            rtprogram::asm::assemble(name, source).map_err(|e| CliError::Asm(e.to_string()))
        })?;
        let key = AnalysisKey { program_hash: hash, geometry, model };
        self.analyses.get_or_compute(key, || {
            AnalyzedProgram::analyze(&program, geometry, model)
                .map_err(|e| CliError::Analysis(e.to_string()))
        })
    }

    /// The replica path for a key this node does not own: fetch from the
    /// owner (under the replica store's single-flight, so concurrent
    /// local requests share one fetch), falling back to a local compute
    /// on any peer failure. The fallback lands in `replicas` — not
    /// `analyses` — so the `analyze` miss counter keeps meaning "stages
    /// this node ran as owner-or-single-node", and is pushed back to the
    /// owner best-effort so the cluster converges.
    fn replicated_program(
        &self,
        cluster: &Arc<crate::cluster::Cluster>,
        key: &AnalysisKey,
        name: &str,
        source: &str,
    ) -> Result<Arc<AnalyzedProgram>, CliError> {
        self.replicas.get_or_compute(*key, || {
            let _span = rtobs::span_labeled("peer_fetch", || name.to_string());
            match cluster.fetch(key, name, source) {
                Ok(artifact) => Ok(artifact),
                Err(error) => {
                    // Dead or unhelpful peer: compute here (latency, not
                    // correctness, is what the failure costs).
                    eprintln!("trisc cluster: peer fetch for `{name}` failed ({error}); computing locally");
                    let program = self.programs.get_or_compute(key.program_hash, || {
                        let _span = rtobs::span_labeled("assemble", || name.to_string());
                        rtprogram::asm::assemble(name, source)
                            .map_err(|e| CliError::Asm(e.to_string()))
                    })?;
                    let artifact =
                        AnalyzedProgram::analyze(&program, key.geometry, key.model)
                            .map_err(|e| CliError::Analysis(e.to_string()))?;
                    cluster.offer(key, &artifact);
                    Ok(artifact)
                }
            }
        })
    }

    /// A store that routes the `analyze` stage through `cluster`, with
    /// the peer-replica cache bounded to `replica_capacity` artifacts.
    pub fn with_cluster(cluster: Arc<crate::cluster::Cluster>, replica_capacity: usize) -> Self {
        ArtifactStore {
            replicas: StageStore::with_capacity("peer_replica", replica_capacity),
            cluster: Some(cluster),
            ..ArtifactStore::default()
        }
    }

    /// The cluster this store routes through, if any.
    pub fn cluster(&self) -> Option<&Arc<crate::cluster::Cluster>> {
        self.cluster.as_ref()
    }

    /// The bounded cache of artifacts owned by other nodes.
    pub fn replicas(&self) -> &StageStore<AnalysisKey, AnalyzedProgram> {
        &self.replicas
    }

    /// Number of resident `analyze` artifacts whose [`route_key`] this
    /// node owns. Outside cluster mode a node is its own one-member ring,
    /// so this equals [`len`](ArtifactStore::len); in cluster mode
    /// fallback-computed keys live in `replicas`, so every `analyses`
    /// resident is owned unless the ring changed underneath us.
    pub fn ring_owned_keys(&self) -> u64 {
        match &self.cluster {
            None => self.analyses.len() as u64,
            Some(cluster) => {
                self.analyses.keys().iter().filter(|key| cluster.owns(route_key(key))).count()
                    as u64
            }
        }
    }

    /// The memoized `assemble` stage.
    pub fn programs(&self) -> &StageStore<u128, Program> {
        &self.programs
    }

    /// The memoized `analyze` stage.
    pub fn analyses(&self) -> &StageStore<AnalysisKey, AnalyzedProgram> {
        &self.analyses
    }

    /// The shared CRPD pairwise-cell cache (`crpd_cell` stage).
    pub fn cells(&self) -> &CrpdCellCache {
        &self.cells
    }

    /// `analyze`-stage hits — the store's headline counter (analysis
    /// dominates request latency, so this is what "artifact cache hit"
    /// has always meant in `metrics`).
    pub fn hits(&self) -> u64 {
        self.analyses.hits()
    }

    /// `analyze`-stage misses.
    pub fn misses(&self) -> u64 {
        self.analyses.misses()
    }

    /// Number of distinct analysis artifacts currently held.
    pub fn len(&self) -> usize {
        self.analyses.len()
    }

    /// `true` if no analysis artifact has been stored yet.
    pub fn is_empty(&self) -> bool {
        self.analyses.is_empty()
    }

    /// Counters of every stage, in pipeline order.
    pub fn stage_stats(&self) -> Vec<StageStats> {
        vec![
            self.programs.stats(),
            self.analyses.stats(),
            StageStats {
                stage: "crpd_cell",
                hits: self.cells.hits(),
                misses: self.cells.misses(),
                entries: self.cells.len() as u64,
                single_flight_waits: 0,
            },
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Barrier;

    const TASK: &str =
        "start: li r1, 5\nloop: addi r1, r1, -1\nbne r1, r0, loop\n.bound loop, 5\nhalt\n";

    fn params(priority: u32) -> TaskParams {
        TaskParams { period: 10_000, priority }
    }

    #[test]
    fn second_lookup_hits_and_shares_the_artifact() {
        let store = ArtifactStore::default();
        let g = CacheGeometry::paper_l1();
        let m = TimingModel::default();
        let a = store.analyzed("t", TASK, params(1), g, m).unwrap();
        assert_eq!((store.hits(), store.misses(), store.len()), (0, 1, 1));
        let b = store.analyzed("t", TASK, params(1), g, m).unwrap();
        assert_eq!((store.hits(), store.misses(), store.len()), (1, 1, 1));
        assert!(Arc::ptr_eq(a.program(), b.program()), "hits must share the artifact, not copy it");
        assert_eq!((store.programs().hits(), store.programs().misses()), (1, 1));
    }

    #[test]
    fn params_only_changes_hit_every_stage() {
        let store = ArtifactStore::default();
        let g = CacheGeometry::paper_l1();
        let m = TimingModel::default();
        let a = store.analyzed("t", TASK, params(1), g, m).unwrap();
        // Different scheduling parameters: same program artifact, rebound.
        let b = store.analyzed("t", TASK, params(2), g, m).unwrap();
        assert_eq!((store.hits(), store.misses(), store.len()), (1, 1, 1));
        assert!(Arc::ptr_eq(a.program(), b.program()));
        assert_eq!(b.params(), &params(2));
    }

    #[test]
    fn content_and_model_changes_miss_the_right_stages() {
        let store = ArtifactStore::default();
        let g = CacheGeometry::paper_l1();
        let m = TimingModel::default();
        store.analyzed("t", TASK, params(1), g, m).unwrap();
        // Different source content under the same name: every stage misses.
        store.analyzed("t", "start: halt\n", params(1), g, m).unwrap();
        // Different geometry: assemble hits, analyze misses.
        store.analyzed("t", TASK, params(1), CacheGeometry::new(64, 2, 16).unwrap(), m).unwrap();
        // Different timing model: assemble hits, analyze misses.
        store.analyzed("t", TASK, params(1), g, TimingModel::with_miss_penalty(40)).unwrap();
        assert_eq!((store.misses(), store.len()), (4, 4));
        assert_eq!(store.hits(), 0);
        assert_eq!((store.programs().misses(), store.programs().len()), (2, 2));
        assert_eq!(store.programs().hits(), 2);
    }

    #[test]
    fn name_is_part_of_the_content() {
        // The task name appears in rendered reports, so artifacts under
        // different names must not alias even with identical source.
        assert_ne!(program_hash("a", "x"), program_hash("b", "x"));
        assert_ne!(program_hash("ab", "c"), program_hash("a", "bc"));
    }

    #[test]
    fn errors_are_not_cached() {
        let store = ArtifactStore::default();
        let g = CacheGeometry::paper_l1();
        let m = TimingModel::default();
        let err = store.analyzed("bad", "frobnicate r1\n", params(1), g, m).unwrap_err();
        assert!(matches!(err, CliError::Asm(_)));
        assert!(store.is_empty());
        assert!(store.programs().is_empty(), "a failed assemble must clear its slot");
        // The failed stage retries (and fails again) on the next request.
        store.analyzed("bad", "frobnicate r1\n", params(1), g, m).unwrap_err();
        assert_eq!(store.programs().misses(), 2);
    }

    #[test]
    fn concurrent_same_key_requests_are_single_flight() {
        const THREADS: usize = 8;
        let store: StageStore<u32, u64> = StageStore::new("analyze");
        let barrier = Barrier::new(THREADS);
        let runs = AtomicU64::new(0);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..THREADS)
                .map(|_| {
                    scope.spawn(|| {
                        barrier.wait();
                        store.get_or_compute(7, || {
                            runs.fetch_add(1, Ordering::Relaxed);
                            // Hold the in-flight slot long enough that the
                            // other threads demonstrably arrive meanwhile.
                            std::thread::sleep(std::time::Duration::from_millis(50));
                            Ok::<u64, CliError>(42)
                        })
                    })
                })
                .collect();
            for handle in handles {
                assert_eq!(*handle.join().expect("worker").expect("compute"), 42);
            }
        });
        assert_eq!(runs.load(Ordering::Relaxed), 1, "exactly one leader runs the stage");
        assert_eq!(store.misses(), 1, "single-flight: one miss per key, however many racers");
        assert_eq!(store.hits(), THREADS as u64 - 1);
        assert!(store.single_flight_waits() > 0, "the non-leaders blocked on the in-flight slot");
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn failed_leader_lets_waiters_retry() {
        const THREADS: usize = 4;
        let store: StageStore<u32, u64> = StageStore::new("analyze");
        let barrier = Barrier::new(THREADS);
        let attempts = AtomicU64::new(0);
        let successes = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for _ in 0..THREADS {
                scope.spawn(|| {
                    barrier.wait();
                    let result = store.get_or_compute(7, || {
                        // The first leader fails; whoever retries succeeds.
                        if attempts.fetch_add(1, Ordering::SeqCst) == 0 {
                            std::thread::sleep(std::time::Duration::from_millis(20));
                            Err(CliError::Analysis("transient".into()))
                        } else {
                            Ok(99)
                        }
                    });
                    if let Ok(v) = result {
                        assert_eq!(*v, 99);
                        successes.fetch_add(1, Ordering::SeqCst);
                    }
                });
            }
        });
        assert_eq!(successes.load(Ordering::SeqCst), THREADS as u64 - 1);
        assert_eq!(store.len(), 1, "the retried computation is cached");
    }
}
