//! Content-addressed memoization of [`AnalyzedTask`] artifacts.
//!
//! Task analysis (path simulation + useful-block sweeps + WCET) dominates
//! request latency, and real clients resubmit the same task systems with
//! small parameter tweaks. The store keys each artifact by everything the
//! analysis depends on — the program *content* (not its file name), the
//! cache geometry, the timing model and the scheduling parameters — and
//! hands out [`Arc`] clones so concurrent requests share one artifact
//! without copying. Results are immutable once computed (the analysis is
//! deterministic; see `crpd::intra`'s ordered sweeps), so no invalidation
//! is ever needed: a changed source text simply hashes to a new key, and
//! stale keys age out only when the server restarts.
//!
//! Failed analyses are *not* cached: errors are cheap to recompute and
//! callers may fix the environment (e.g. a missing include path) between
//! requests.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crpd::{AnalyzedTask, TaskParams};
use rtcache::CacheGeometry;
use rtcli::CliError;
use rtwcet::TimingModel;

/// Everything an [`AnalyzedTask`] artifact depends on.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ArtifactKey {
    /// FNV-1a hash of the task name and assembly source text.
    pub program_hash: u64,
    /// Cache geometry analyzed under.
    pub geometry: CacheGeometry,
    /// Timing model analyzed under.
    pub model: TimingModel,
    /// Scheduling parameters baked into the artifact.
    pub params: TaskParams,
}

/// 64-bit FNV-1a over `name` and `source`, with a separator so
/// `("ab", "c")` and `("a", "bc")` hash differently.
pub fn program_hash(name: &str, source: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in name.bytes().chain([0u8]).chain(source.bytes()) {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The shared artifact cache plus its hit/miss counters.
#[derive(Debug, Default)]
pub struct ArtifactStore {
    entries: Mutex<HashMap<ArtifactKey, Arc<AnalyzedTask>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ArtifactStore {
    /// Returns the memoized artifact for `(name, source, params,
    /// geometry, model)`, analyzing and inserting it on first use.
    ///
    /// The analysis itself runs outside the map lock, so distinct tasks
    /// analyze in parallel across worker threads. Two threads racing on
    /// the *same* key may both analyze; determinism makes the results
    /// interchangeable and the first insert wins.
    ///
    /// # Errors
    ///
    /// Returns [`CliError::Asm`] or [`CliError::Analysis`] from the
    /// underlying pipeline; errors are never cached.
    pub fn analyzed(
        &self,
        name: &str,
        source: &str,
        params: TaskParams,
        geometry: CacheGeometry,
        model: TimingModel,
    ) -> Result<Arc<AnalyzedTask>, CliError> {
        let key = ArtifactKey {
            program_hash: program_hash(name, source),
            geometry,
            model,
            params: params.clone(),
        };
        if let Some(found) = self.entries.lock().expect("store lock").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(found));
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let program = {
            let _span = rtobs::span_labeled("assemble", || name.to_string());
            rtprogram::asm::assemble(name, source).map_err(|e| CliError::Asm(e.to_string()))?
        };
        let analyzed = AnalyzedTask::analyze(&program, params, geometry, model)
            .map_err(|e| CliError::Analysis(e.to_string()))?;
        let artifact = Arc::new(analyzed);
        let mut entries = self.entries.lock().expect("store lock");
        Ok(Arc::clone(entries.entry(key).or_insert(artifact)))
    }

    /// Number of lookups served from the cache so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of lookups that had to analyze.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of distinct artifacts currently held.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("store lock").len()
    }

    /// `true` if no artifact has been stored yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TASK: &str =
        "start: li r1, 5\nloop: addi r1, r1, -1\nbne r1, r0, loop\n.bound loop, 5\nhalt\n";

    fn params(priority: u32) -> TaskParams {
        TaskParams { period: 10_000, priority }
    }

    #[test]
    fn second_lookup_hits_and_shares_the_artifact() {
        let store = ArtifactStore::default();
        let g = CacheGeometry::paper_l1();
        let m = TimingModel::default();
        let a = store.analyzed("t", TASK, params(1), g, m).unwrap();
        assert_eq!((store.hits(), store.misses(), store.len()), (0, 1, 1));
        let b = store.analyzed("t", TASK, params(1), g, m).unwrap();
        assert_eq!((store.hits(), store.misses(), store.len()), (1, 1, 1));
        assert!(Arc::ptr_eq(&a, &b), "hits must share the artifact, not copy it");
    }

    #[test]
    fn any_key_component_change_misses() {
        let store = ArtifactStore::default();
        let g = CacheGeometry::paper_l1();
        let m = TimingModel::default();
        store.analyzed("t", TASK, params(1), g, m).unwrap();
        // Different source content under the same name.
        store.analyzed("t", "start: halt\n", params(1), g, m).unwrap();
        // Different scheduling parameters on the same program.
        store.analyzed("t", TASK, params(2), g, m).unwrap();
        // Different geometry.
        store.analyzed("t", TASK, params(1), CacheGeometry::new(64, 2, 16).unwrap(), m).unwrap();
        // Different timing model.
        store.analyzed("t", TASK, params(1), g, TimingModel::with_miss_penalty(40)).unwrap();
        assert_eq!(store.hits(), 0);
        assert_eq!((store.misses(), store.len()), (5, 5));
    }

    #[test]
    fn name_is_part_of_the_content() {
        // The task name appears in rendered reports, so artifacts under
        // different names must not alias even with identical source.
        assert_ne!(program_hash("a", "x"), program_hash("b", "x"));
        assert_ne!(program_hash("ab", "c"), program_hash("a", "bc"));
    }

    #[test]
    fn errors_are_not_cached() {
        let store = ArtifactStore::default();
        let g = CacheGeometry::paper_l1();
        let m = TimingModel::default();
        let err = store.analyzed("bad", "frobnicate r1\n", params(1), g, m).unwrap_err();
        assert!(matches!(err, CliError::Asm(_)));
        assert!(store.is_empty());
        assert_eq!(store.misses(), 1);
    }
}
