//! A hand-rolled JSON value, parser and encoder.
//!
//! The wire protocol is newline-delimited JSON and the workspace takes no
//! external dependencies, so this module implements the (small) JSON
//! subset the protocol needs: objects, arrays, strings with full escape
//! handling, numbers, booleans and null. Numbers are kept as `f64`; the
//! protocol only carries ids, ports, cycle horizons and counters, all well
//! within `f64`'s 2^53 exact-integer range.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value. Objects use [`BTreeMap`] so encoding is
/// deterministic (keys sort lexicographically), which keeps server
/// responses reproducible byte-for-byte.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object.
    Obj(BTreeMap<String, Json>),
}

/// A parse failure with the byte offset where it happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid json at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parses one JSON document; trailing non-whitespace is an error.
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] with the offending byte offset.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(value)
    }

    /// Encodes the value on a single line (no added whitespace), so it can
    /// travel as one newline-delimited frame.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_number(*n, out),
            Json::Str(s) => write_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(map) => {
                out.push('{');
                for (i, (key, value)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(key, out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Member lookup on an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 9e15 => Some(*n as u64),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Builds an object from `(key, value)` pairs.
    pub fn obj<const N: usize>(pairs: [(&str, Json); N]) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Num(n as f64)
    }
}

fn write_number(n: f64, out: &mut String) {
    if n.fract() == 0.0 && n.abs() <= 9e15 {
        let _ = fmt::Write::write_fmt(out, format_args!("{}", n as i64));
    } else {
        let _ = fmt::Write::write_fmt(out, format_args!("{n}"));
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError { at: self.pos, message: message.to_string() }
    }

    fn skip_ws(&mut self) {
        while let Some(b' ' | b'\t' | b'\n' | b'\r') = self.bytes.get(self.pos) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.bytes.get(self.pos) == Some(&byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.bytes.get(self.pos) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    out.push(self.escape()?);
                }
                Some(&b) if b < 0x20 => return Err(self.err("raw control byte in string")),
                Some(_) => {
                    // Consume the maximal run of plain bytes in one append
                    // (the input is a &str and the run ends at an ASCII
                    // byte, so both cut points are valid UTF-8 boundaries).
                    let rest = &self.bytes[self.pos..];
                    let run = rest
                        .iter()
                        .position(|&b| b == b'"' || b == b'\\' || b < 0x20)
                        .unwrap_or(rest.len());
                    out.push_str(std::str::from_utf8(&rest[..run]).expect("subslice of a &str"));
                    self.pos += run;
                }
            }
        }
    }

    fn escape(&mut self) -> Result<char, JsonError> {
        let c = match self.bytes.get(self.pos) {
            Some(b'"') => '"',
            Some(b'\\') => '\\',
            Some(b'/') => '/',
            Some(b'b') => '\u{8}',
            Some(b'f') => '\u{c}',
            Some(b'n') => '\n',
            Some(b'r') => '\r',
            Some(b't') => '\t',
            Some(b'u') => {
                self.pos += 1;
                return self.unicode_escape();
            }
            _ => return Err(self.err("bad escape")),
        };
        self.pos += 1;
        Ok(c)
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let digits = self
            .bytes
            .get(self.pos..self.pos + 4)
            .and_then(|d| std::str::from_utf8(d).ok())
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let code =
            u32::from_str_radix(digits, 16).map_err(|_| self.err("bad \\u escape digits"))?;
        self.pos += 4;
        Ok(code)
    }

    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let code = self.hex4()?;
        // Surrogate pair: a leading surrogate must be followed by
        // `\uDC00`..`\uDFFF`, combining into one supplementary character.
        if (0xD800..0xDC00).contains(&code) {
            if self.bytes.get(self.pos..self.pos + 2) != Some(b"\\u") {
                return Err(self.err("unpaired surrogate"));
            }
            self.pos += 2;
            let low = self.hex4()?;
            if !(0xDC00..0xE000).contains(&low) {
                return Err(self.err("bad low surrogate"));
            }
            let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
            return char::from_u32(combined).ok_or_else(|| self.err("bad surrogate pair"));
        }
        char::from_u32(code).ok_or_else(|| self.err("unpaired surrogate"))
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while let Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') = self.bytes.get(self.pos) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("ascii digits are valid utf-8");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| JsonError { at: start, message: format!("bad number `{text}`") })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_documents() {
        let text = r#"{"id":7,"cmd":"wcrt","spec":"task a a.s 1 1\n","nested":{"xs":[1,2.5,-3],"t":true,"n":null}}"#;
        let parsed = Json::parse(text).unwrap();
        assert_eq!(parsed.get("id").unwrap().as_u64(), Some(7));
        assert_eq!(parsed.get("cmd").unwrap().as_str(), Some("wcrt"));
        assert_eq!(parsed.get("spec").unwrap().as_str(), Some("task a a.s 1 1\n"));
        let reparsed = Json::parse(&parsed.encode()).unwrap();
        assert_eq!(parsed, reparsed);
    }

    #[test]
    fn escapes_survive_round_trips() {
        for s in ["line\nbreak", "tab\tquote\"back\\slash", "nul\u{1}ctl", "ünïcødé 🦀"] {
            let encoded = Json::Str(s.to_string()).encode();
            assert!(!encoded.contains('\n'), "frames must stay on one line: {encoded}");
            assert_eq!(Json::parse(&encoded).unwrap().as_str(), Some(s));
        }
    }

    #[test]
    fn surrogate_pairs_decode() {
        assert_eq!(Json::parse(r#""🦀""#).unwrap().as_str(), Some("🦀"));
        assert!(Json::parse(r#""\ud83e""#).is_err(), "unpaired surrogate");
    }

    #[test]
    fn megabyte_strings_parse_in_linear_time() {
        // A spec at the protocol's size limit must parse as one run, not
        // one whole-input UTF-8 validation per character.
        let body = "x".repeat(1 << 20);
        let doc = format!("{{\"spec\":\"{body}\"}}");
        let parsed = Json::parse(&doc).unwrap();
        assert_eq!(parsed.get("spec").unwrap().as_str(), Some(body.as_str()));
        // Escapes still split runs correctly.
        let mixed = format!("\"{body}\\n{body}\"");
        assert_eq!(Json::parse(&mixed).unwrap().as_str().unwrap().len(), (2 << 20) + 1);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "{\"a\":}", "[1,]", "tru", "\"unterminated", "{\"a\":1} extra", "1e"] {
            assert!(Json::parse(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn integers_encode_without_fraction() {
        assert_eq!(Json::Num(42.0).encode(), "42");
        assert_eq!(Json::Num(2.5).encode(), "2.5");
        assert_eq!(Json::from(0u64).encode(), "0");
    }

    #[test]
    fn object_encoding_is_deterministic() {
        let a = Json::obj([("b", Json::from(1u64)), ("a", Json::from(2u64))]);
        assert_eq!(a.encode(), r#"{"a":2,"b":1}"#);
    }
}
