//! `rtserver` — a concurrent WCRT analysis service.
//!
//! The one-shot `trisc` CLI re-analyzes every task from scratch on each
//! run. This crate keeps the analysis pipeline resident: a long-lived TCP
//! daemon (`trisc serve`) speaks a newline-delimited JSON protocol
//! ([`proto`]), executes `wcet`/`crpd`/`wcrt`/`sim` requests on a fixed
//! worker pool ([`pool`]), memoizes `AnalyzedTask` artifacts
//! content-addressed by program text, cache geometry, timing model and
//! scheduling parameters ([`store`]), and reports per-endpoint counters
//! and latency percentiles through a `metrics` request ([`metrics`]).
//!
//! Everything is `std`-only — the JSON codec ([`json`]) is hand-rolled —
//! and responses render through the exact same `rtcli` code paths as the
//! one-shot commands, so server output is byte-identical to the CLI's.
//!
//! Started with `--cluster PEERS_FILE`, several daemons shard the
//! `analyze` stage by consistent hashing and fetch each other's cached
//! artifacts over the same protocol, with local compute as the fallback
//! when a peer is unreachable ([`cluster`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod json;
pub mod metrics;
pub mod ops;
pub mod pool;
pub mod proto;
pub mod server;
pub mod store;

pub use server::{run, Server, ServerHandle, ServerState};
