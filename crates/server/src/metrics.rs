//! Built-in observability: per-endpoint request counters, error counters
//! and log₂-bucketed latency histograms, snapshotted by the `metrics`
//! request.
//!
//! Latencies land in buckets `[2^i, 2^(i+1))` microseconds, so reported
//! percentiles are upper bounds with at most 2× resolution — plenty to
//! tell a 50 µs cache hit from a 50 ms cold analysis, at a fixed 512-byte
//! footprint per endpoint and O(1) recording cost.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::json::Json;
use crate::store::ArtifactStore;

/// Number of log₂ buckets: covers up to 2^40 µs (~13 days) per request.
const BUCKETS: usize = 40;

/// A log₂-bucketed latency histogram.
#[derive(Debug, Clone)]
struct Histogram {
    /// `buckets[i]` counts samples in `[2^i, 2^(i+1))` µs (0 µs lands in
    /// bucket 0 too).
    buckets: [u64; BUCKETS],
    total: u64,
    /// Exact sum of every recorded sample, µs (buckets quantize; the sum
    /// does not, so mean latency stays exact).
    sum_us: u64,
    /// Largest recorded sample, µs.
    max_us: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram { buckets: [0; BUCKETS], total: 0, sum_us: 0, max_us: 0 }
    }
}

impl Histogram {
    fn record(&mut self, micros: u64) {
        let index = (63 - u64::leading_zeros(micros.max(1)) as usize).min(BUCKETS - 1);
        self.buckets[index] += 1;
        self.total += 1;
        self.sum_us = self.sum_us.saturating_add(micros);
        self.max_us = self.max_us.max(micros);
    }

    /// The upper bound (in µs) of the bucket holding the `q`-quantile
    /// sample, or 0 with no samples. `q` in `[0, 1]`.
    fn quantile_upper_bound(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        // ceil(q * total) with a floor of 1: the rank of the quantile
        // sample in ascending order.
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0;
        for (i, count) in self.buckets.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return (1u64 << (i + 1)) - 1;
            }
        }
        u64::MAX
    }
}

#[derive(Debug, Clone, Default)]
struct EndpointStats {
    requests: u64,
    errors: u64,
    /// Requests shed by admission control before any analysis ran (not
    /// counted in `requests`/`errors`: the server never handled them).
    shed: u64,
    /// Requests rejected because their queue wait exceeded the deadline
    /// (these *are* also counted as handled errors).
    deadline_misses: u64,
    latency: Histogram,
}

/// Admission-control gauges owned by the server state, passed into
/// [`Metrics::snapshot`]/[`Metrics::prometheus`] so the registry stays a
/// pure recorder.
#[derive(Debug, Clone, Copy, Default)]
pub struct AdmissionSnapshot {
    /// Analysis requests currently dispatched (admission-counted).
    pub inflight: u64,
    /// The `--max-inflight` cap.
    pub max_inflight: u64,
    /// Analysis requests shed since startup.
    pub shed_total: u64,
    /// Connections currently open on the reactor.
    pub open_connections: u64,
    /// Reactor event loops.
    pub event_threads: u64,
}

/// Server-wide metrics. One instance lives in the shared server state;
/// workers record one sample per handled request.
#[derive(Debug)]
pub struct Metrics {
    started: Instant,
    endpoints: Mutex<BTreeMap<&'static str, EndpointStats>>,
    /// Sweep points evaluated by `explore` requests, cumulative.
    explore_points: AtomicU64,
    /// Pareto-front size of the most recent completed `explore` sweep.
    explore_front_size: AtomicU64,
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics {
            started: Instant::now(),
            endpoints: Mutex::new(BTreeMap::new()),
            explore_points: AtomicU64::new(0),
            explore_front_size: AtomicU64::new(0),
        }
    }
}

impl Metrics {
    /// Records one handled request for `endpoint`.
    pub fn record(&self, endpoint: &'static str, ok: bool, elapsed: Duration) {
        let mut endpoints = self.endpoints.lock().expect("metrics lock");
        let stats = endpoints.entry(endpoint).or_default();
        stats.requests += 1;
        if !ok {
            stats.errors += 1;
        }
        stats.latency.record(u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX));
    }

    /// Records one request for `endpoint` shed by admission control. Shed
    /// requests never ran, so they land only in the shed counter — not in
    /// `requests`, `errors` or the latency histogram.
    pub fn record_shed(&self, endpoint: &'static str) {
        let mut endpoints = self.endpoints.lock().expect("metrics lock");
        endpoints.entry(endpoint).or_default().shed += 1;
    }

    /// Records one deadline miss for `endpoint` (the request was rejected
    /// after parse but before analysis; the caller still records it as a
    /// handled error via [`record`](Metrics::record)).
    pub fn record_deadline_miss(&self, endpoint: &'static str) {
        let mut endpoints = self.endpoints.lock().expect("metrics lock");
        endpoints.entry(endpoint).or_default().deadline_misses += 1;
    }

    /// Per-endpoint admission counters: `(endpoint, shed,
    /// deadline_misses)`, for the `statusz` payload.
    pub fn admission_by_endpoint(&self) -> Vec<(String, u64, u64)> {
        let endpoints = self.endpoints.lock().expect("metrics lock");
        endpoints
            .iter()
            .map(|(name, stats)| ((*name).to_string(), stats.shed, stats.deadline_misses))
            .collect()
    }

    /// Seconds since the server started.
    pub fn uptime_secs(&self) -> u64 {
        self.started.elapsed().as_secs()
    }

    /// Records one completed `explore` sweep: `points` accumulate, the
    /// front size tracks the latest sweep.
    pub fn record_explore(&self, points: u64, front_size: u64) {
        self.explore_points.fetch_add(points, Ordering::Relaxed);
        self.explore_front_size.store(front_size, Ordering::Relaxed);
    }

    /// Snapshots everything — uptime, per-endpoint counters and latency
    /// percentiles, the artifact-cache counters, and the analysis-pool
    /// shape (`analysis_threads` total, of which `analysis_workers` are
    /// spawned background threads) — as the `metrics` response payload.
    pub fn snapshot(
        &self,
        store: &ArtifactStore,
        analysis_threads: usize,
        analysis_workers: usize,
        admission: &AdmissionSnapshot,
    ) -> Json {
        let endpoints = self.endpoints.lock().expect("metrics lock");
        let per_endpoint = endpoints
            .iter()
            .map(|(name, stats)| {
                let json = Json::obj([
                    ("requests", Json::from(stats.requests)),
                    ("errors", Json::from(stats.errors)),
                    ("shed", Json::from(stats.shed)),
                    ("deadline_misses", Json::from(stats.deadline_misses)),
                    ("count", Json::from(stats.latency.total)),
                    ("sum_us", Json::from(stats.latency.sum_us)),
                    ("max_us", Json::from(stats.latency.max_us)),
                    ("p50_us", Json::from(stats.latency.quantile_upper_bound(0.50))),
                    ("p95_us", Json::from(stats.latency.quantile_upper_bound(0.95))),
                    ("p99_us", Json::from(stats.latency.quantile_upper_bound(0.99))),
                ]);
                ((*name).to_string(), json)
            })
            .collect();
        let stages = store
            .stage_stats()
            .into_iter()
            .map(|s| {
                let json = Json::obj([
                    ("hits", Json::from(s.hits)),
                    ("misses", Json::from(s.misses)),
                    ("entries", Json::from(s.entries)),
                    ("single_flight_waits", Json::from(s.single_flight_waits)),
                ]);
                (s.stage.to_string(), json)
            })
            .collect();
        Json::obj([
            ("uptime_secs", Json::from(self.uptime_secs())),
            ("endpoints", Json::Obj(per_endpoint)),
            (
                // The `analyze` stage's counters, kept under the historic
                // name for dashboards that predate the staged store.
                "artifact_cache",
                Json::obj([
                    ("hits", Json::from(store.hits())),
                    ("misses", Json::from(store.misses())),
                    ("entries", Json::from(store.len() as u64)),
                ]),
            ),
            ("stages", Json::Obj(stages)),
            (
                "explore",
                Json::obj([
                    ("points_total", Json::from(self.explore_points.load(Ordering::Relaxed))),
                    ("front_size", Json::from(self.explore_front_size.load(Ordering::Relaxed))),
                ]),
            ),
            (
                "analysis_pool",
                Json::obj([
                    ("threads", Json::from(analysis_threads as u64)),
                    ("background_workers", Json::from(analysis_workers as u64)),
                ]),
            ),
            (
                "admission",
                Json::obj([
                    ("inflight", Json::from(admission.inflight)),
                    ("max_inflight", Json::from(admission.max_inflight)),
                    ("shed_total", Json::from(admission.shed_total)),
                    ("open_connections", Json::from(admission.open_connections)),
                    ("event_threads", Json::from(admission.event_threads)),
                ]),
            ),
            ("peer", {
                let peer = store.cluster().map(|c| c.stats()).unwrap_or_default();
                Json::obj([
                    ("fetch_hits", Json::from(peer.hits)),
                    ("fetch_misses", Json::from(peer.misses)),
                    ("fetch_timeouts", Json::from(peer.timeouts)),
                    ("fallbacks", Json::from(peer.fallbacks())),
                    ("puts", Json::from(peer.puts)),
                    ("ring_owned_keys", Json::from(store.ring_owned_keys())),
                ])
            }),
        ])
    }

    /// Renders everything in the Prometheus text exposition format (the
    /// `metrics_prom` response payload): the same data as [`snapshot`]
    /// plus the analysis pool's activity gauges and the flight recorder's
    /// inflight gauge, record counter, slow-capture counter and per-stage
    /// attributed wall time.
    ///
    /// The log₂ histograms translate directly: bucket `i` covers
    /// `[2^i, 2^(i+1))` µs, so its inclusive Prometheus bound is
    /// `le="2^(i+1)-1"` (latencies are integral µs), cumulative counts
    /// are monotone by construction, and `+Inf` equals `_count`.
    ///
    /// The output passes [`validate_prometheus`], which the tests pin.
    ///
    /// [`snapshot`]: Metrics::snapshot
    pub fn prometheus(
        &self,
        store: &ArtifactStore,
        pool: &rtpar::PoolStats,
        flight: &rtobs::flight::FlightRecorder,
        slow_captures: u64,
        admission: &AdmissionSnapshot,
    ) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let mut gauge = |name: &str, help: &str, value: &dyn std::fmt::Display| {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {value}");
        };
        gauge("rtserver_uptime_seconds", "Seconds since the server started.", &self.uptime_secs());
        gauge(
            "rtserver_artifact_cache_entries",
            "Memoized analysis artifacts currently cached.",
            &store.len(),
        );
        gauge(
            "rtserver_analysis_pool_threads",
            "Total analysis parallelism (background workers + caller).",
            &pool.threads,
        );
        gauge(
            "rtserver_analysis_pool_queue_depth",
            "Batch tokens waiting in the analysis pool queue.",
            &pool.queue_depth,
        );
        gauge(
            "rtserver_analysis_pool_worker_utilization",
            "Fraction of analysis work items stolen by background workers.",
            &format_args!("{:.6}", pool.worker_utilization()),
        );
        gauge(
            "rtserver_explore_front_size",
            "Pareto-front size of the most recent explore sweep.",
            &self.explore_front_size.load(Ordering::Relaxed),
        );
        gauge(
            "rtserver_inflight",
            "Analysis requests currently dispatched (admission-counted).",
            &admission.inflight,
        );
        gauge(
            "rtserver_max_inflight",
            "The --max-inflight admission cap.",
            &admission.max_inflight,
        );
        gauge(
            "rtserver_open_connections",
            "Connections currently open on the reactor.",
            &admission.open_connections,
        );
        gauge("rtserver_event_threads", "Reactor event loops.", &admission.event_threads);
        gauge(
            "rtserver_ring_owned_keys",
            "Resident analyze artifacts whose ring owner is this node.",
            &store.ring_owned_keys(),
        );
        let mut counter = |name: &str, help: &str, value: u64| {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {value}");
        };
        counter("rtserver_artifact_cache_hits_total", "Artifact cache hits.", store.hits());
        counter("rtserver_artifact_cache_misses_total", "Artifact cache misses.", store.misses());
        counter(
            "rtserver_analysis_pool_batches_total",
            "Fan-out batches executed by the analysis pool.",
            pool.batches,
        );
        counter(
            "rtserver_analysis_pool_items_inline_total",
            "Work items run inline by the submitting thread.",
            pool.items_inline,
        );
        counter(
            "rtserver_analysis_pool_items_stolen_total",
            "Work items stolen by background pool workers.",
            pool.items_stolen,
        );
        let (skyline_kept, skyline_pruned) = crpd::skyline_stats();
        counter(
            "rtserver_skyline_points_kept_total",
            "Pareto-maximal useful-footprint points kept by skyline pruning.",
            skyline_kept,
        );
        counter(
            "rtserver_skyline_points_pruned_total",
            "Dominated useful-footprint points discarded by skyline pruning.",
            skyline_pruned,
        );
        counter(
            "rtserver_explore_points_total",
            "Design-space sweep points evaluated by explore requests.",
            self.explore_points.load(Ordering::Relaxed),
        );
        counter(
            "rtserver_flight_records_total",
            "Flight records committed by the always-on recorder.",
            flight.records_total(),
        );
        counter(
            "rtserver_slow_requests_total",
            "Requests slower than --slow-ms captured into the black box.",
            slow_captures,
        );
        let peer = store.cluster().map(|c| c.stats()).unwrap_or_default();
        counter(
            "rtserver_peer_fetch_hits_total",
            "Peer fetches answered with an artifact by the owning node.",
            peer.hits,
        );
        counter(
            "rtserver_peer_fetch_misses_total",
            "Peer fetches the owner answered without a usable artifact (local fallback ran).",
            peer.misses,
        );
        counter(
            "rtserver_peer_fetch_timeouts_total",
            "Peer fetches that timed out or found the owner unreachable (local fallback ran).",
            peer.timeouts,
        );
        let _ = writeln!(
            out,
            "# HELP rtserver_stage_request_nanoseconds_total Wall time attributed per pipeline stage across all requests."
        );
        let _ = writeln!(out, "# TYPE rtserver_stage_request_nanoseconds_total counter");
        for (stage, ns) in flight.stage_totals() {
            let _ = writeln!(
                out,
                "rtserver_stage_request_nanoseconds_total{{stage=\"{}\"}} {ns}",
                escape_label_value(stage)
            );
        }
        // Per-stage DAG counters, labelled by pipeline stage.
        let stages = store.stage_stats();
        for (name, help, value) in [
            (
                "rtserver_stage_cache_hits_total",
                "Pipeline-stage cache hits (artifact reused).",
                (|s: &crate::store::StageStats| s.hits) as fn(&crate::store::StageStats) -> u64,
            ),
            (
                "rtserver_stage_cache_misses_total",
                "Pipeline-stage cache misses (stage re-ran).",
                |s| s.misses,
            ),
            (
                "rtserver_stage_single_flight_waits_total",
                "Lookups that blocked on another worker's in-flight computation.",
                |s| s.single_flight_waits,
            ),
        ] {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} counter");
            for s in &stages {
                let _ = writeln!(
                    out,
                    "{name}{{stage=\"{}\"}} {}",
                    escape_label_value(s.stage),
                    value(s)
                );
            }
        }
        let _ = writeln!(out, "# HELP rtserver_stage_cache_entries Artifacts held per stage.");
        let _ = writeln!(out, "# TYPE rtserver_stage_cache_entries gauge");
        for s in &stages {
            let _ = writeln!(
                out,
                "rtserver_stage_cache_entries{{stage=\"{}\"}} {}",
                escape_label_value(s.stage),
                s.entries
            );
        }
        let endpoints = self.endpoints.lock().expect("metrics lock");
        let _ = writeln!(out, "# HELP rtserver_requests_total Handled requests per endpoint.");
        let _ = writeln!(out, "# TYPE rtserver_requests_total counter");
        for (name, stats) in endpoints.iter() {
            let name = escape_label_value(name);
            let _ =
                writeln!(out, "rtserver_requests_total{{endpoint=\"{name}\"}} {}", stats.requests);
        }
        let _ = writeln!(out, "# HELP rtserver_request_errors_total Failed requests per endpoint.");
        let _ = writeln!(out, "# TYPE rtserver_request_errors_total counter");
        for (name, stats) in endpoints.iter() {
            let _ = writeln!(
                out,
                "rtserver_request_errors_total{{endpoint=\"{}\"}} {}",
                escape_label_value(name),
                stats.errors
            );
        }
        let _ = writeln!(
            out,
            "# HELP rtserver_shed_total Requests shed by admission control per endpoint."
        );
        let _ = writeln!(out, "# TYPE rtserver_shed_total counter");
        for (name, stats) in endpoints.iter() {
            let _ = writeln!(
                out,
                "rtserver_shed_total{{endpoint=\"{}\"}} {}",
                escape_label_value(name),
                stats.shed
            );
        }
        let _ = writeln!(
            out,
            "# HELP rtserver_deadline_misses_total Requests rejected past their queue-wait deadline per endpoint."
        );
        let _ = writeln!(out, "# TYPE rtserver_deadline_misses_total counter");
        for (name, stats) in endpoints.iter() {
            let _ = writeln!(
                out,
                "rtserver_deadline_misses_total{{endpoint=\"{}\"}} {}",
                escape_label_value(name),
                stats.deadline_misses
            );
        }
        let hist = "rtserver_request_duration_microseconds";
        let _ = writeln!(out, "# HELP {hist} Request latency per endpoint, microseconds.");
        let _ = writeln!(out, "# TYPE {hist} histogram");
        for (name, stats) in endpoints.iter() {
            let name = escape_label_value(name);
            let mut cumulative = 0;
            for (i, count) in stats.latency.buckets.iter().enumerate() {
                cumulative += count;
                let le = (1u64 << (i + 1)) - 1;
                let _ =
                    writeln!(out, "{hist}_bucket{{endpoint=\"{name}\",le=\"{le}\"}} {cumulative}");
            }
            let _ = writeln!(
                out,
                "{hist}_bucket{{endpoint=\"{name}\",le=\"+Inf\"}} {}",
                stats.latency.total
            );
            let _ = writeln!(out, "{hist}_sum{{endpoint=\"{name}\"}} {}", stats.latency.sum_us);
            let _ = writeln!(out, "{hist}_count{{endpoint=\"{name}\"}} {}", stats.latency.total);
        }
        out
    }
}

/// Escapes a label value for the Prometheus text exposition format:
/// backslash, double quote and newline become `\\`, `\"` and `\n`.
pub fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

/// Checks a Prometheus text exposition for the conformance points the
/// scrape parsers actually reject: the text must end with a newline,
/// every sample's family must carry `# HELP` and `# TYPE` lines *before*
/// its first sample, no family may be declared twice, `# TYPE` must name
/// a known type, label values must use valid escapes, and sample values
/// must parse as numbers.
///
/// Histogram families implicitly declare their `_bucket`/`_sum`/`_count`
/// series; summaries likewise.
///
/// # Errors
///
/// Returns a message naming the first offending line.
pub fn validate_prometheus(text: &str) -> Result<(), String> {
    use std::collections::BTreeMap;
    if text.is_empty() {
        return Err("empty exposition".into());
    }
    if !text.ends_with('\n') {
        return Err("exposition must end with a newline".into());
    }
    let mut help: BTreeMap<&str, ()> = BTreeMap::new();
    let mut types: BTreeMap<&str, &str> = BTreeMap::new();
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let name = rest.split(' ').next().unwrap_or("");
            if name.is_empty() {
                return Err(format!("HELP without a family name: `{line}`"));
            }
            if help.insert(name, ()).is_some() {
                return Err(format!("duplicate HELP for family `{name}`"));
            }
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split(' ');
            let name = parts.next().unwrap_or("");
            let kind = parts.next().unwrap_or("");
            if !["counter", "gauge", "histogram", "summary", "untyped"].contains(&kind) {
                return Err(format!("unknown TYPE `{kind}` for family `{name}`"));
            }
            if types.insert(name, kind).is_some() {
                return Err(format!("duplicate TYPE for family `{name}`"));
            }
            continue;
        }
        if line.starts_with('#') {
            continue; // free-form comment
        }
        // Sample line: name[{labels}] value
        let name_end = line.find(['{', ' ']).ok_or_else(|| format!("malformed sample `{line}`"))?;
        let name = &line[..name_end];
        let family = types
            .contains_key(name)
            .then_some(name)
            .or_else(|| {
                ["_bucket", "_sum", "_count"].iter().find_map(|suffix| {
                    let base = name.strip_suffix(suffix)?;
                    matches!(types.get(base), Some(&"histogram") | Some(&"summary")).then_some(base)
                })
            })
            .ok_or_else(|| format!("sample `{name}` has no preceding TYPE declaration"))?;
        if !help.contains_key(family) {
            return Err(format!("sample `{name}` has no preceding HELP declaration"));
        }
        let rest = &line[name_end..];
        let value_part = if let Some(labels_and_value) = rest.strip_prefix('{') {
            let close = scan_labels(labels_and_value)
                .map_err(|e| format!("bad labels in `{line}`: {e}"))?;
            labels_and_value[close..].trim_start_matches('}').trim_start()
        } else {
            rest.trim_start()
        };
        let value = value_part.split(' ').next().unwrap_or("");
        if !matches!(value, "+Inf" | "-Inf" | "NaN") && value.parse::<f64>().is_err() {
            return Err(format!("non-numeric sample value `{value}` in `{line}`"));
        }
    }
    Ok(())
}

/// Scans a `name="value",...` label body, validating escapes; returns the
/// byte offset of the closing `}`.
fn scan_labels(body: &str) -> Result<usize, String> {
    let bytes = body.as_bytes();
    let mut i = 0;
    loop {
        if i >= bytes.len() {
            return Err("unterminated label set".into());
        }
        if bytes[i] == b'}' {
            return Ok(i);
        }
        // label name
        let eq = body[i..].find('=').ok_or("label without `=`")? + i;
        if body[i..eq].is_empty() {
            return Err("empty label name".into());
        }
        i = eq + 1;
        if bytes.get(i) != Some(&b'"') {
            return Err("label value must be double-quoted".into());
        }
        i += 1;
        loop {
            match bytes.get(i) {
                None => return Err("unterminated label value".into()),
                Some(b'"') => {
                    i += 1;
                    break;
                }
                Some(b'\\') => match bytes.get(i + 1) {
                    Some(b'\\') | Some(b'"') | Some(b'n') => i += 2,
                    _ => return Err("invalid escape in label value".into()),
                },
                Some(_) => i += 1,
            }
        }
        if bytes.get(i) == Some(&b',') {
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_log2() {
        let mut h = Histogram::default();
        for micros in [0, 1, 2, 3, 4, 1000, 1_000_000] {
            h.record(micros);
        }
        assert_eq!(h.total, 7);
        assert_eq!(h.buckets[0], 2, "0 and 1 µs share bucket 0");
        assert_eq!(h.buckets[1], 2, "2 and 3 µs");
        assert_eq!(h.buckets[2], 1, "4 µs");
        assert_eq!(h.buckets[9], 1, "1000 µs in [512, 1024)");
        assert_eq!(h.buckets[19], 1, "1 s in [2^19, 2^20) µs");
    }

    #[test]
    fn quantiles_are_upper_bounds_and_monotone() {
        let mut h = Histogram::default();
        assert_eq!(h.quantile_upper_bound(0.5), 0, "empty histogram");
        for _ in 0..98 {
            h.record(10); // bucket 3: [8, 16)
        }
        h.record(100_000); // bucket 16
        h.record(100_000);
        let p50 = h.quantile_upper_bound(0.50);
        let p95 = h.quantile_upper_bound(0.95);
        let p99 = h.quantile_upper_bound(0.99);
        assert_eq!(p50, 15, "the p50 sample is a 10 µs one");
        assert_eq!(p95, 15);
        assert!(p99 >= 100_000, "p99 must reach the slow tail, got {p99}");
        assert!(p50 <= p95 && p95 <= p99);
    }

    #[test]
    fn snapshot_shape() {
        let metrics = Metrics::default();
        let store = ArtifactStore::default();
        metrics.record("wcrt", true, Duration::from_micros(300));
        metrics.record("wcrt", false, Duration::from_micros(700));
        metrics.record("ping", true, Duration::from_micros(2));
        metrics.record_shed("wcrt");
        metrics.record_shed("wcrt");
        metrics.record_deadline_miss("wcrt");
        let admission = AdmissionSnapshot {
            inflight: 1,
            max_inflight: 256,
            shed_total: 2,
            open_connections: 3,
            event_threads: 2,
        };
        let snap = metrics.snapshot(&store, 4, 3, &admission);
        let wcrt = snap.get("endpoints").unwrap().get("wcrt").unwrap();
        assert_eq!(wcrt.get("requests").unwrap().as_u64(), Some(2));
        assert_eq!(wcrt.get("errors").unwrap().as_u64(), Some(1));
        assert_eq!(wcrt.get("shed").unwrap().as_u64(), Some(2), "sheds are not requests");
        assert_eq!(wcrt.get("deadline_misses").unwrap().as_u64(), Some(1));
        assert_eq!(wcrt.get("count").unwrap().as_u64(), Some(2));
        assert_eq!(wcrt.get("sum_us").unwrap().as_u64(), Some(1000));
        assert_eq!(wcrt.get("max_us").unwrap().as_u64(), Some(700));
        assert!(wcrt.get("p99_us").unwrap().as_u64().unwrap() >= 700);
        let cache = snap.get("artifact_cache").unwrap();
        assert_eq!(cache.get("hits").unwrap().as_u64(), Some(0));
        let stages = snap.get("stages").unwrap();
        for stage in ["assemble", "analyze", "crpd_cell"] {
            let s = stages.get(stage).unwrap_or_else(|| panic!("stage {stage} in metrics"));
            assert_eq!(s.get("hits").unwrap().as_u64(), Some(0));
            assert_eq!(s.get("misses").unwrap().as_u64(), Some(0));
            assert_eq!(s.get("entries").unwrap().as_u64(), Some(0));
            assert!(s.get("single_flight_waits").unwrap().as_u64().is_some());
        }
        assert!(snap.get("uptime_secs").unwrap().as_u64().is_some());
        let adm = snap.get("admission").unwrap();
        assert_eq!(adm.get("inflight").unwrap().as_u64(), Some(1));
        assert_eq!(adm.get("max_inflight").unwrap().as_u64(), Some(256));
        assert_eq!(adm.get("shed_total").unwrap().as_u64(), Some(2));
        assert_eq!(adm.get("open_connections").unwrap().as_u64(), Some(3));
        assert_eq!(adm.get("event_threads").unwrap().as_u64(), Some(2));
        assert_eq!(
            metrics.admission_by_endpoint(),
            vec![("ping".to_string(), 0, 0), ("wcrt".to_string(), 2, 1)]
        );
        metrics.record_explore(64, 5);
        metrics.record_explore(36, 3);
        let snap = metrics.snapshot(&store, 4, 3, &admission);
        let explore = snap.get("explore").unwrap();
        assert_eq!(explore.get("points_total").unwrap().as_u64(), Some(100));
        assert_eq!(explore.get("front_size").unwrap().as_u64(), Some(3), "latest sweep wins");
        let pool = snap.get("analysis_pool").unwrap();
        assert_eq!(pool.get("threads").unwrap().as_u64(), Some(4));
        assert_eq!(pool.get("background_workers").unwrap().as_u64(), Some(3));
    }

    #[test]
    fn prometheus_exposition_is_well_formed() {
        let metrics = Metrics::default();
        let store = ArtifactStore::default();
        metrics.record("wcrt", true, Duration::from_micros(300));
        metrics.record("wcrt", false, Duration::from_micros(700));
        metrics.record_explore(200, 7);
        let pool = rtpar::Pool::new(1);
        pool.install(|| rtpar::par_map_range(4, |i| i));
        let flight = rtobs::flight::FlightRecorder::new(8);
        let scope = flight.begin("wcrt", 0, false);
        {
            let _span = rtobs::span("crpd");
            std::thread::sleep(Duration::from_millis(1));
        }
        scope.finish(true);
        metrics.record_shed("wcrt");
        metrics.record_deadline_miss("wcrt");
        let admission = AdmissionSnapshot {
            inflight: 5,
            max_inflight: 64,
            shed_total: 1,
            open_connections: 9,
            event_threads: 2,
        };
        let text = metrics.prometheus(&store, &pool.stats(), &flight, 3, &admission);

        // Every metric family carries HELP and TYPE lines.
        for family in [
            "rtserver_uptime_seconds",
            "rtserver_requests_total",
            "rtserver_request_errors_total",
            "rtserver_request_duration_microseconds",
            "rtserver_analysis_pool_queue_depth",
            "rtserver_analysis_pool_items_inline_total",
            "rtserver_analysis_pool_worker_utilization",
            "rtserver_stage_cache_hits_total",
            "rtserver_stage_cache_misses_total",
            "rtserver_stage_cache_entries",
            "rtserver_stage_single_flight_waits_total",
            "rtserver_skyline_points_kept_total",
            "rtserver_skyline_points_pruned_total",
            "rtserver_explore_points_total",
            "rtserver_explore_front_size",
            "rtserver_inflight",
            "rtserver_max_inflight",
            "rtserver_open_connections",
            "rtserver_event_threads",
            "rtserver_shed_total",
            "rtserver_deadline_misses_total",
            "rtserver_flight_records_total",
            "rtserver_slow_requests_total",
            "rtserver_peer_fetch_hits_total",
            "rtserver_peer_fetch_misses_total",
            "rtserver_peer_fetch_timeouts_total",
            "rtserver_ring_owned_keys",
            "rtserver_stage_request_nanoseconds_total",
        ] {
            assert!(text.contains(&format!("# HELP {family} ")), "missing HELP for {family}");
            assert!(text.contains(&format!("# TYPE {family} ")), "missing TYPE for {family}");
        }
        assert!(text.contains("rtserver_requests_total{endpoint=\"wcrt\"} 2"), "{text}");
        assert!(text.contains("rtserver_request_errors_total{endpoint=\"wcrt\"} 1"), "{text}");
        assert!(text.contains("rtserver_explore_points_total 200"), "{text}");
        assert!(text.contains("rtserver_explore_front_size 7"), "{text}");
        assert!(text.contains("rtserver_analysis_pool_items_inline_total 4"), "{text}");
        for stage in ["assemble", "analyze", "crpd_cell"] {
            assert!(
                text.contains(&format!("rtserver_stage_cache_hits_total{{stage=\"{stage}\"}} 0")),
                "{text}"
            );
            assert!(
                text.contains(&format!("rtserver_stage_cache_entries{{stage=\"{stage}\"}} 0")),
                "{text}"
            );
        }

        // Histogram invariants: cumulative buckets are monotone, +Inf
        // equals _count, and _sum holds the exact total.
        let mut last = 0;
        let mut bucket_lines = 0;
        for line in text.lines().filter(|l| {
            l.starts_with("rtserver_request_duration_microseconds_bucket{endpoint=\"wcrt\"")
        }) {
            let value: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(value >= last, "buckets must be cumulative: {line}");
            last = value;
            bucket_lines += 1;
        }
        assert_eq!(bucket_lines, super::BUCKETS + 1, "all buckets plus +Inf");
        assert!(
            text.contains(
                "rtserver_request_duration_microseconds_bucket{endpoint=\"wcrt\",le=\"+Inf\"} 2"
            ),
            "{text}"
        );
        assert!(
            text.contains("rtserver_request_duration_microseconds_sum{endpoint=\"wcrt\"} 1000"),
            "{text}"
        );
        assert!(
            text.contains("rtserver_request_duration_microseconds_count{endpoint=\"wcrt\"} 2"),
            "{text}"
        );
        // 300 µs lands in bucket [256, 512) and 700 µs in [512, 1024),
        // so the le="511" bucket holds exactly one sample.
        assert!(
            text.contains(
                "rtserver_request_duration_microseconds_bucket{endpoint=\"wcrt\",le=\"511\"} 1"
            ),
            "{text}"
        );

        // Admission families carry live values.
        assert!(text.contains("rtserver_inflight 5"), "{text}");
        assert!(text.contains("rtserver_max_inflight 64"), "{text}");
        assert!(text.contains("rtserver_open_connections 9"), "{text}");
        assert!(text.contains("rtserver_event_threads 2"), "{text}");
        assert!(text.contains("rtserver_shed_total{endpoint=\"wcrt\"} 1"), "{text}");
        assert!(text.contains("rtserver_deadline_misses_total{endpoint=\"wcrt\"} 1"), "{text}");
        assert!(text.contains("rtserver_flight_records_total 1"), "{text}");
        assert!(text.contains("rtserver_slow_requests_total 3"), "{text}");
        // Peer families are always exposed; outside cluster mode the
        // counters sit at zero and the node owns its whole (empty) ring.
        assert!(text.contains("rtserver_peer_fetch_hits_total 0"), "{text}");
        assert!(text.contains("rtserver_peer_fetch_misses_total 0"), "{text}");
        assert!(text.contains("rtserver_peer_fetch_timeouts_total 0"), "{text}");
        assert!(text.contains("rtserver_ring_owned_keys 0"), "{text}");
        let crpd = text
            .lines()
            .find(|l| l.starts_with("rtserver_stage_request_nanoseconds_total{stage=\"crpd\"}"))
            .expect("crpd stage line");
        let ns: u64 = crpd.rsplit(' ').next().unwrap().parse().unwrap();
        assert!(ns >= 1_000_000, "the 1 ms span must be attributed: {crpd}");

        // The full exposition passes the conformance validator.
        validate_prometheus(&text).unwrap();
    }

    #[test]
    fn escape_label_value_covers_the_three_specials() {
        assert_eq!(escape_label_value("plain"), "plain");
        assert_eq!(escape_label_value("a\\b\"c\nd"), "a\\\\b\\\"c\\nd");
    }

    #[test]
    fn validator_rejects_nonconformant_expositions() {
        // A minimal conformant exposition passes.
        let good = "# HELP m Things.\n# TYPE m counter\nm 1\n";
        validate_prometheus(good).unwrap();
        let good_hist = "# HELP h H.\n# TYPE h histogram\n\
             h_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 1\nh_sum 1\nh_count 1\n";
        validate_prometheus(good_hist).unwrap();
        let good_labels = "# HELP m M.\n# TYPE m gauge\nm{a=\"x\\\\y\\\"z\\n\",b=\"w\"} 2.5\n";
        validate_prometheus(good_labels).unwrap();

        for (text, needle) in [
            ("", "empty"),
            ("# HELP m M.\n# TYPE m counter\nm 1", "end with a newline"),
            ("m 1\n", "no preceding TYPE"),
            ("# TYPE m counter\nm 1\n", "no preceding HELP"),
            ("# HELP m M.\n# TYPE m counter\n# HELP m M.\nm 1\n", "duplicate HELP"),
            ("# HELP m M.\n# TYPE m counter\n# TYPE m gauge\nm 1\n", "duplicate TYPE"),
            ("# HELP m M.\n# TYPE m frobnicator\nm 1\n", "unknown TYPE"),
            ("# HELP m M.\n# TYPE m counter\nm{a=\"x\\q\"} 1\n", "invalid escape"),
            ("# HELP m M.\n# TYPE m counter\nm{a=\"x} 1\n", "unterminated"),
            ("# HELP m M.\n# TYPE m counter\nm{a=x} 1\n", "double-quoted"),
            ("# HELP m M.\n# TYPE m counter\nm potato\n", "non-numeric"),
            // _bucket series require a histogram/summary TYPE.
            ("# HELP m M.\n# TYPE m counter\nm_bucket{le=\"1\"} 1\n", "no preceding TYPE"),
        ] {
            let err = validate_prometheus(text).unwrap_err();
            assert!(err.contains(needle), "{text:?}: {err}");
        }
    }
}
