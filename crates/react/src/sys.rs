//! Hand-written FFI for the poller backends and fd limits.
//!
//! The workspace takes no external dependencies, so the few libc entry
//! points the reactor needs — `epoll_create1`/`epoll_ctl`/`epoll_wait`
//! on Linux, `poll(2)` everywhere, `getrlimit`/`setrlimit` for the
//! `RLIMIT_NOFILE` raise, and `close` — are declared here directly.
//! `std` already links libc, so no build script or link attribute is
//! needed. Every raw call is wrapped in a safe function that owns the
//! pointer/length invariants; callers of this module never write
//! `unsafe` themselves.

#![allow(non_camel_case_types)]

use std::io;
use std::os::raw::{c_int, c_short};
use std::os::unix::io::RawFd;

/// `nfds_t` for `poll(2)`: `unsigned long` on Linux, `unsigned int` on
/// the BSD family.
#[cfg(target_os = "linux")]
type nfds_t = std::os::raw::c_ulong;
#[cfg(not(target_os = "linux"))]
type nfds_t = std::os::raw::c_uint;

/// `rlim_t` is 64-bit on every supported target.
type rlim_t = u64;

/// `struct rlimit`.
#[repr(C)]
#[derive(Debug, Clone, Copy, Default)]
pub struct Rlimit {
    /// Soft limit (the enforced one).
    pub cur: rlim_t,
    /// Hard ceiling the soft limit may be raised to without privilege.
    pub max: rlim_t,
}

#[cfg(target_os = "linux")]
const RLIMIT_NOFILE: c_int = 7;
#[cfg(not(target_os = "linux"))]
const RLIMIT_NOFILE: c_int = 8;

/// `struct pollfd`.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct PollFd {
    /// The fd to watch (negative entries are ignored by the kernel).
    pub fd: c_int,
    /// Requested readiness (`POLL*` bits).
    pub events: c_short,
    /// Returned readiness.
    pub revents: c_short,
}

/// `POLLIN`.
pub const POLLIN: c_short = 0x001;
/// `POLLPRI`.
pub const POLLPRI: c_short = 0x002;
/// `POLLOUT`.
pub const POLLOUT: c_short = 0x004;
/// `POLLERR` (always reported; never requested).
pub const POLLERR: c_short = 0x008;
/// `POLLHUP` (always reported; never requested).
pub const POLLHUP: c_short = 0x010;
/// `POLLNVAL` (fd not open; always reported).
pub const POLLNVAL: c_short = 0x020;

/// `struct epoll_event`. The kernel packs it on x86-64 only.
#[cfg(target_os = "linux")]
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Debug, Clone, Copy)]
pub struct EpollEvent {
    /// `EPOLL*` readiness bits.
    pub events: u32,
    /// Caller-owned cookie (the reactor stores the registration token).
    pub data: u64,
}

#[cfg(target_os = "linux")]
mod epoll_consts {
    /// `EPOLL_CLOEXEC` (== `O_CLOEXEC`).
    pub const EPOLL_CLOEXEC: super::c_int = 0o2000000;
    /// `EPOLL_CTL_ADD`.
    pub const EPOLL_CTL_ADD: super::c_int = 1;
    /// `EPOLL_CTL_DEL`.
    pub const EPOLL_CTL_DEL: super::c_int = 2;
    /// `EPOLL_CTL_MOD`.
    pub const EPOLL_CTL_MOD: super::c_int = 3;
    /// `EPOLLIN`.
    pub const EPOLLIN: u32 = 0x001;
    /// `EPOLLPRI`.
    pub const EPOLLPRI: u32 = 0x002;
    /// `EPOLLOUT`.
    pub const EPOLLOUT: u32 = 0x004;
    /// `EPOLLERR`.
    pub const EPOLLERR: u32 = 0x008;
    /// `EPOLLHUP`.
    pub const EPOLLHUP: u32 = 0x010;
    /// `EPOLLRDHUP` (peer closed its write half).
    pub const EPOLLRDHUP: u32 = 0x2000;
}
#[cfg(target_os = "linux")]
pub use epoll_consts::*;

extern "C" {
    #[cfg(target_os = "linux")]
    fn epoll_create1(flags: c_int) -> c_int;
    #[cfg(target_os = "linux")]
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    #[cfg(target_os = "linux")]
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn poll(fds: *mut PollFd, nfds: nfds_t, timeout: c_int) -> c_int;
    fn close(fd: c_int) -> c_int;
    fn getrlimit(resource: c_int, rlim: *mut Rlimit) -> c_int;
    fn setrlimit(resource: c_int, rlim: *const Rlimit) -> c_int;
}

fn check(ret: c_int) -> io::Result<c_int> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// Creates a close-on-exec epoll instance and returns its fd.
///
/// # Errors
///
/// Propagates the OS error.
#[cfg(target_os = "linux")]
pub fn epoll_create() -> io::Result<RawFd> {
    // SAFETY: no pointers involved; the returned fd is checked.
    check(unsafe { epoll_create1(EPOLL_CLOEXEC) })
}

/// Adds, modifies or removes `fd` in the epoll set (`op` is one of the
/// `EPOLL_CTL_*` constants).
///
/// # Errors
///
/// Propagates the OS error.
#[cfg(target_os = "linux")]
pub fn epoll_control(epfd: RawFd, op: c_int, fd: RawFd, events: u32, data: u64) -> io::Result<()> {
    let mut event = EpollEvent { events, data };
    // SAFETY: `event` outlives the call; the kernel copies it.
    check(unsafe { epoll_ctl(epfd, op, fd, &mut event) }).map(|_| ())
}

/// Waits for readiness on the epoll set, filling `events` from the
/// front; returns how many entries are valid. `timeout_ms < 0` blocks
/// indefinitely. Retries `EINTR` internally.
///
/// # Errors
///
/// Propagates the OS error.
#[cfg(target_os = "linux")]
pub fn epoll_wait_events(
    epfd: RawFd,
    events: &mut [EpollEvent],
    timeout_ms: c_int,
) -> io::Result<usize> {
    loop {
        let capacity = c_int::try_from(events.len()).unwrap_or(c_int::MAX);
        // SAFETY: `events` is a valid writable buffer of `capacity` entries.
        match check(unsafe { epoll_wait(epfd, events.as_mut_ptr(), capacity, timeout_ms) }) {
            Ok(n) => return Ok(n as usize),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
}

/// `poll(2)` over `fds`; returns how many entries have nonzero
/// `revents`. `timeout_ms < 0` blocks indefinitely. Retries `EINTR`
/// internally.
///
/// # Errors
///
/// Propagates the OS error.
pub fn poll_fds(fds: &mut [PollFd], timeout_ms: c_int) -> io::Result<usize> {
    loop {
        let len = fds.len() as nfds_t;
        // SAFETY: `fds` is a valid mutable slice for `len` entries.
        match check(unsafe { poll(fds.as_mut_ptr(), len, timeout_ms) }) {
            Ok(n) => return Ok(n as usize),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
}

/// Closes a raw fd the reactor owns (the epoll instance).
pub fn close_fd(fd: RawFd) {
    // SAFETY: the caller owns `fd` and never uses it again.
    let _ = unsafe { close(fd) };
}

/// Reads the process's `RLIMIT_NOFILE` (soft, hard).
///
/// # Errors
///
/// Propagates the OS error.
pub fn nofile_limit() -> io::Result<Rlimit> {
    let mut lim = Rlimit::default();
    // SAFETY: `lim` is a valid out-pointer for the duration of the call.
    check(unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) })?;
    Ok(lim)
}

/// Raises the soft `RLIMIT_NOFILE` toward `target` and returns the
/// resulting soft limit. A no-op when the soft limit already meets
/// `target`. Privileged processes may lift the hard ceiling as well;
/// that attempt is best-effort, and unprivileged ones fall back to
/// clamping at the existing hard cap.
///
/// # Errors
///
/// Propagates the OS error.
pub fn raise_nofile_limit(target: u64) -> io::Result<u64> {
    let lim = nofile_limit()?;
    if target <= lim.cur {
        return Ok(lim.cur);
    }
    if target > lim.max {
        let lifted = Rlimit { cur: target, max: target };
        // SAFETY: `lifted` is a valid in-pointer for the duration of the
        // call. Failure (EPERM without CAP_SYS_RESOURCE) is expected and
        // handled by the clamped fallback below.
        if unsafe { setrlimit(RLIMIT_NOFILE, &lifted) } == 0 {
            return Ok(target);
        }
    }
    let want = target.min(lim.max);
    if want <= lim.cur {
        return Ok(lim.cur);
    }
    let raised = Rlimit { cur: want, max: lim.max };
    // SAFETY: `raised` is a valid in-pointer for the duration of the call.
    check(unsafe { setrlimit(RLIMIT_NOFILE, &raised) })?;
    Ok(want)
}
