//! The outbound half of the reactor crate: a small blocking NDJSON
//! client with connection reuse and hard deadlines.
//!
//! The inbound side ([`crate::run`]) multiplexes thousands of server
//! connections on a few event loops; outbound peer traffic has the
//! opposite shape — a handful of long-lived connections, one in-flight
//! request each, issued from worker threads that are *already* blocked
//! on the answer (a stage-cache miss cannot proceed without it). A
//! plain blocking socket with `SO_RCVTIMEO`/`SO_SNDTIMEO` is the right
//! tool: no cross-thread completion plumbing, and the OS enforces the
//! deadline even when the peer wedges mid-line.
//!
//! [`PeerClient`] keeps one connection per instance and reconnects
//! transparently once per request, so a peer restart costs a single
//! round-trip instead of poisoning the client. Responses are framed by
//! [`LineFramer`] with the same oversized-line cap as the server side.

use std::io::{self, ErrorKind, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::frame::{FrameError, LineFramer};

/// A reusable blocking NDJSON connection to one peer.
///
/// Not `Sync`: wrap it in a `Mutex` to share a peer connection between
/// threads (requests on one connection must not interleave).
#[derive(Debug)]
pub struct PeerClient {
    addr: String,
    connect_timeout: Duration,
    io_timeout: Duration,
    max_line: usize,
    conn: Option<Conn>,
}

#[derive(Debug)]
struct Conn {
    stream: TcpStream,
    framer: LineFramer,
}

impl PeerClient {
    /// Creates a client for `addr` (connected lazily on first use).
    ///
    /// `io_timeout` bounds each request round-trip's write and read
    /// halves separately; `max_line` is the fatal cap on a response
    /// line's length and should match the serving reactor's
    /// `max_line_bytes`.
    pub fn new(
        addr: impl Into<String>,
        connect_timeout: Duration,
        io_timeout: Duration,
        max_line: usize,
    ) -> PeerClient {
        PeerClient { addr: addr.into(), connect_timeout, io_timeout, max_line, conn: None }
    }

    /// The peer's address.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// True while a connection is being held for reuse.
    pub fn is_connected(&self) -> bool {
        self.conn.is_some()
    }

    /// Sends one request line (without the trailing `\n`) and returns
    /// the peer's one response line.
    ///
    /// Reuses the held connection when there is one; a failure on a
    /// *reused* connection triggers exactly one reconnect-and-retry
    /// (the peer may simply have dropped an idle keepalive). Errors on
    /// a fresh connection propagate. On any error the held connection
    /// is discarded, so the next call starts clean.
    ///
    /// # Errors
    ///
    /// `TimedOut`/`WouldBlock` when a deadline expires, or any
    /// underlying socket error; `InvalidData` for an oversized or
    /// non-UTF-8 response line.
    pub fn request(&mut self, line: &str) -> io::Result<String> {
        let reused = self.conn.is_some();
        match self.round_trip(line) {
            Ok(response) => Ok(response),
            Err(err) => {
                self.conn = None;
                if !reused {
                    return Err(err);
                }
                // One retry on a fresh connection.
                self.round_trip(line).inspect_err(|_| self.conn = None)
            }
        }
    }

    /// Drops the held connection (the next request reconnects).
    pub fn disconnect(&mut self) {
        self.conn = None;
    }

    fn round_trip(&mut self, line: &str) -> io::Result<String> {
        if self.conn.is_none() {
            self.conn = Some(self.connect()?);
        }
        let conn = self.conn.as_mut().expect("connection just established");
        conn.stream.write_all(line.as_bytes())?;
        conn.stream.write_all(b"\n")?;
        conn.stream.flush()?;
        let mut scratch = [0u8; 16 * 1024];
        loop {
            match conn.framer.next_line() {
                Ok(Some(response)) => return Ok(response),
                Ok(None) => {}
                Err(FrameError::Oversized(limit)) => {
                    return Err(io::Error::new(
                        ErrorKind::InvalidData,
                        format!("peer {} response exceeds {limit} bytes", self.addr),
                    ));
                }
                Err(FrameError::Utf8) => {
                    return Err(io::Error::new(
                        ErrorKind::InvalidData,
                        format!("peer {} sent a non-UTF-8 response line", self.addr),
                    ));
                }
            }
            match conn.stream.read(&mut scratch) {
                Ok(0) => {
                    return Err(io::Error::new(
                        ErrorKind::UnexpectedEof,
                        format!("peer {} closed mid-response", self.addr),
                    ));
                }
                Ok(n) => conn.framer.push(&scratch[..n]),
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }

    fn connect(&self) -> io::Result<Conn> {
        let mut last = None;
        for addr in self.addr.to_socket_addrs()? {
            match TcpStream::connect_timeout(&addr, self.connect_timeout) {
                Ok(stream) => {
                    stream.set_read_timeout(Some(self.io_timeout))?;
                    stream.set_write_timeout(Some(self.io_timeout))?;
                    stream.set_nodelay(true)?;
                    return Ok(Conn { stream, framer: LineFramer::new(self.max_line) });
                }
                Err(e) => last = Some(e),
            }
        }
        Err(last.unwrap_or_else(|| {
            io::Error::new(ErrorKind::AddrNotAvailable, format!("{}: no addresses", self.addr))
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader};
    use std::net::TcpListener;
    use std::thread;

    const FAST: Duration = Duration::from_millis(2_000);

    /// An accept loop that answers `n` connections with `reply(line)`
    /// per request line, then exits.
    fn serve_lines(
        listener: TcpListener,
        conns: usize,
        reply: impl Fn(&str) -> Option<String> + Send + 'static,
    ) -> thread::JoinHandle<()> {
        thread::spawn(move || {
            for _ in 0..conns {
                let Ok((stream, _)) = listener.accept() else { return };
                let mut writer = stream.try_clone().unwrap();
                let reader = BufReader::new(stream);
                for line in reader.lines() {
                    let Ok(line) = line else { break };
                    match reply(&line) {
                        Some(response) => {
                            writer.write_all(response.as_bytes()).unwrap();
                            writer.write_all(b"\n").unwrap();
                        }
                        None => break, // close without answering
                    }
                }
            }
        })
    }

    #[test]
    fn reuses_one_connection_across_requests() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = serve_lines(listener, 1, |line| Some(format!("echo:{line}")));
        let mut client = PeerClient::new(addr.to_string(), FAST, FAST, 1 << 20);
        assert_eq!(client.request("a").unwrap(), "echo:a");
        assert!(client.is_connected());
        assert_eq!(client.request("b").unwrap(), "echo:b");
        drop(client); // closes the only accepted connection
        server.join().unwrap();
    }

    #[test]
    fn reconnects_once_after_peer_drop() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        // First connection answers one request then closes; the second
        // connection keeps answering. The client's second request must
        // transparently land on the reconnect.
        let server = serve_lines(listener, 2, {
            let first = std::sync::atomic::AtomicBool::new(true);
            move |line| {
                if line == "die" && first.swap(false, std::sync::atomic::Ordering::SeqCst) {
                    None
                } else {
                    Some(format!("echo:{line}"))
                }
            }
        });
        let mut client = PeerClient::new(addr.to_string(), FAST, FAST, 1 << 20);
        assert_eq!(client.request("warm").unwrap(), "echo:warm");
        assert_eq!(client.request("die").unwrap(), "echo:die");
        drop(client);
        server.join().unwrap();
    }

    #[test]
    fn read_deadline_fires_on_a_silent_peer() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        // Accept but never answer.
        let _server = thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            thread::sleep(Duration::from_secs(5));
            drop(stream);
        });
        let mut client =
            PeerClient::new(addr.to_string(), FAST, Duration::from_millis(50), 1 << 20);
        let err = client.request("hello").unwrap_err();
        assert!(
            matches!(err.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut),
            "expected a timeout, got {err:?}"
        );
        assert!(!client.is_connected(), "a failed request must drop the connection");
    }

    #[test]
    fn oversized_response_is_invalid_data() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = serve_lines(listener, 1, |_| Some("x".repeat(256)));
        let mut client = PeerClient::new(addr.to_string(), FAST, FAST, 64);
        let err = client.request("hi").unwrap_err();
        assert_eq!(err.kind(), ErrorKind::InvalidData, "{err:?}");
        drop(client);
        server.join().unwrap();
    }

    #[test]
    fn connect_failure_propagates() {
        // A port nothing listens on: bind-then-drop reserves then frees it.
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let mut client = PeerClient::new(addr.to_string(), Duration::from_millis(200), FAST, 64);
        assert!(client.request("hi").is_err());
        assert!(!client.is_connected());
    }
}
