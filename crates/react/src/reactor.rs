//! The event loops: nonblocking accept, per-connection framing and
//! buffered writes over a [`Poller`], with request execution delegated
//! to the embedding server through a [`Handler`].
//!
//! ## Readiness model
//!
//! `run` drives `event_threads` loops. Loop 0 owns the (nonblocking)
//! listener and deals accepted connections round-robin across all loops
//! via per-loop inboxes; every loop then owns its connections outright —
//! no cross-loop locking on the hot path. A readable connection is
//! drained into its [`LineFramer`]; each complete line is timestamped
//! (its *readiness* instant) and queued. At most **one** line per
//! connection is dispatched to the handler at a time, so responses come
//! back in request order exactly like a thread-per-connection server,
//! while different connections proceed in parallel. The handler answers
//! through a [`Responder`] from any thread; the completion lands in the
//! owning loop's inbox, is written on the next writability, and the
//! connection's next queued line dispatches.
//!
//! ## Backpressure and robustness
//!
//! A connection stops being read once `pipeline_cap` framed lines are
//! queued (interest drops to write-only until the queue drains), a line
//! longer than `max_line_bytes` closes the connection, and connections
//! idle past `idle_timeout` with no request in flight are reaped. A
//! mid-write disconnect closes only that connection; its in-flight
//! completion is discarded by generation check when it arrives.
//!
//! ## Shutdown
//!
//! A handler finishing with [`Control::Shutdown`] (after its response is
//! queued for its own connection) raises the shared flag and wakes every
//! loop. Loops stop accepting and reading, drop undispatched lines, and
//! drain: every dispatched request still completes and flushes before
//! its loop exits (bounded by `drain_timeout` against wedged peers).

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::frame::{FrameError, LineFramer};
use crate::poller::{Event, Interest, Poller, PollerKind};

/// Reactor tuning. The defaults suit an analysis server: small event
/// fleet, generous line cap, bounded pipelining.
#[derive(Debug, Clone)]
pub struct Config {
    /// Event loops to run (≥ 1). Loop 0 also accepts.
    pub event_threads: usize,
    /// Reap connections idle this long with no request in flight.
    /// `None` (the default) never reaps — idle keepalive connections are
    /// free under readiness polling.
    pub idle_timeout: Option<Duration>,
    /// Fatal cap on a single line's length.
    pub max_line_bytes: usize,
    /// Framed-but-undispatched lines buffered per connection before its
    /// read interest is dropped.
    pub pipeline_cap: usize,
    /// Which poller backend to use.
    pub poller: PollerKind,
    /// Upper bound on the shutdown drain (wedged-peer insurance).
    pub drain_timeout: Duration,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            event_threads: 2,
            idle_timeout: None,
            max_line_bytes: 8 << 20,
            pipeline_cap: 64,
            poller: PollerKind::Auto,
            drain_timeout: Duration::from_secs(5),
        }
    }
}

/// The embedding server's request entry point.
pub trait Handler: Send + Sync + 'static {
    /// Called on an event thread for each framed line. `ready` is the
    /// instant the line was fully framed; `ready.elapsed()` at pickup is
    /// therefore the readiness-to-dispatch queue wait. The handler must
    /// not block: either respond inline or hand off to a worker pool,
    /// then answer (from any thread) through `responder`.
    fn on_line(&self, line: String, ready: Instant, responder: Responder);
}

/// What the reactor does after writing a response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Control {
    /// Keep serving.
    Continue,
    /// Flush this response, then drain every loop and return from
    /// [`run`].
    Shutdown,
}

struct Completion {
    slot: usize,
    gen: u64,
    response: String,
    control: Control,
}

enum Inbound {
    Conn(TcpStream),
    Done(Completion),
}

/// One loop's mailbox: new connections from the acceptor, completions
/// from worker threads, plus the wake pipe that interrupts its poller.
struct LoopShared {
    inbox: Mutex<Vec<Inbound>>,
    waker: UnixStream,
}

impl LoopShared {
    fn push(&self, item: Inbound) {
        self.inbox.lock().expect("reactor inbox").push(item);
        self.wake();
    }

    fn wake(&self) {
        // A full pipe already guarantees a pending wakeup; errors here
        // mean the loop is gone, which the generation check absorbs.
        let _ = (&self.waker).write(&[1]);
    }
}

/// The write-side of one dispatched request. Exactly one response per
/// responder: `send` consumes it; dropping without sending completes
/// the request with no bytes written (the connection keeps serving).
pub struct Responder {
    target: Option<Arc<LoopShared>>,
    slot: usize,
    gen: u64,
}

impl std::fmt::Debug for Responder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Responder").field("slot", &self.slot).field("gen", &self.gen).finish()
    }
}

impl Responder {
    /// Queues `response` (one or more newline-separated frames; the
    /// reactor appends the final newline) for the owning connection.
    pub fn send(self, response: String) {
        self.send_with(response, Control::Continue);
    }

    /// Like [`send`](Responder::send), plus a post-write [`Control`].
    pub fn send_with(mut self, response: String, control: Control) {
        self.complete(response, control);
    }

    fn complete(&mut self, response: String, control: Control) {
        if let Some(target) = self.target.take() {
            target.push(Inbound::Done(Completion {
                slot: self.slot,
                gen: self.gen,
                response,
                control,
            }));
        }
    }
}

impl Drop for Responder {
    fn drop(&mut self) {
        // An unanswered dispatch would wedge its connection (one line in
        // flight at a time); complete it with no bytes instead.
        self.complete(String::new(), Control::Continue);
    }
}

/// Always-on reactor counters, shared with the embedding server's
/// metrics endpoints.
#[derive(Debug, Default)]
pub struct ReactorStats {
    connections_open: AtomicU64,
    connections_total: AtomicU64,
    idle_closed: AtomicU64,
    overflow_closed: AtomicU64,
    write_errors: AtomicU64,
    accept_errors: AtomicU64,
    stale_completions: AtomicU64,
    lines_framed: AtomicU64,
    event_threads: AtomicUsize,
}

impl ReactorStats {
    /// Connections currently registered with some event loop.
    pub fn connections_open(&self) -> u64 {
        self.connections_open.load(Ordering::Relaxed)
    }

    /// Connections accepted since startup.
    pub fn connections_total(&self) -> u64 {
        self.connections_total.load(Ordering::Relaxed)
    }

    /// Connections reaped by the idle timeout.
    pub fn idle_closed(&self) -> u64 {
        self.idle_closed.load(Ordering::Relaxed)
    }

    /// Connections closed for exceeding the line cap.
    pub fn overflow_closed(&self) -> u64 {
        self.overflow_closed.load(Ordering::Relaxed)
    }

    /// Connections closed on a failed response write (peer went away
    /// mid-response).
    pub fn write_errors(&self) -> u64 {
        self.write_errors.load(Ordering::Relaxed)
    }

    /// Accept-loop errors (fd exhaustion and kin).
    pub fn accept_errors(&self) -> u64 {
        self.accept_errors.load(Ordering::Relaxed)
    }

    /// Completions that arrived after their connection closed.
    pub fn stale_completions(&self) -> u64 {
        self.stale_completions.load(Ordering::Relaxed)
    }

    /// Complete request lines framed.
    pub fn lines_framed(&self) -> u64 {
        self.lines_framed.load(Ordering::Relaxed)
    }

    /// Event loops the reactor is running (set by [`run`]).
    pub fn event_threads(&self) -> usize {
        self.event_threads.load(Ordering::Relaxed)
    }
}

const TOKEN_WAKE: usize = 0;
const TOKEN_LISTEN: usize = 1;
const TOKEN_BASE: usize = 2;

/// Drives the reactor over `listener` until a handler returns
/// [`Control::Shutdown`], then drains and returns. Blocks the calling
/// thread (which doubles as event loop 0).
///
/// # Errors
///
/// Returns poller-creation or fatal event-loop errors; per-connection
/// failures are contained to their connection.
///
/// # Panics
///
/// Panics if `config.event_threads` is zero.
pub fn run(
    listener: TcpListener,
    handler: Arc<dyn Handler>,
    config: &Config,
    stats: Arc<ReactorStats>,
) -> io::Result<()> {
    assert!(config.event_threads > 0, "the reactor needs at least one event thread");
    listener.set_nonblocking(true)?;
    stats.event_threads.store(config.event_threads, Ordering::Relaxed);
    let shutdown = Arc::new(AtomicU64::new(0));

    let mut wake_ends = Vec::with_capacity(config.event_threads);
    let mut peers = Vec::with_capacity(config.event_threads);
    for _ in 0..config.event_threads {
        let (rx, tx) = UnixStream::pair()?;
        rx.set_nonblocking(true)?;
        tx.set_nonblocking(true)?;
        peers.push(Arc::new(LoopShared { inbox: Mutex::new(Vec::new()), waker: tx }));
        wake_ends.push(rx);
    }

    let mut loops = Vec::with_capacity(config.event_threads);
    let mut listener = Some(listener);
    for (index, waker) in wake_ends.into_iter().enumerate() {
        loops.push(EventLoop {
            index,
            poller: config.poller.create()?,
            waker,
            listener: if index == 0 { listener.take() } else { None },
            peers: peers.clone(),
            shared: Arc::clone(&peers[index]),
            next_peer: 0,
            conns: Vec::new(),
            gens: Vec::new(),
            free: Vec::new(),
            dispatched: 0,
            handler: Arc::clone(&handler),
            stats: Arc::clone(&stats),
            shutdown: Arc::clone(&shutdown),
            draining_since: None,
            next_sweep: Instant::now(),
            config: config.clone(),
        });
    }

    let mut first = loops.remove(0);
    let spawned: Vec<_> = loops
        .into_iter()
        .map(|mut event_loop| {
            std::thread::Builder::new()
                .name(format!("rtreact-{}", event_loop.index))
                .spawn(move || event_loop.run())
        })
        .collect::<io::Result<_>>()?;
    let result = first.run();
    for thread in spawned {
        match thread.join() {
            Ok(joined) => joined?,
            Err(_) => return Err(io::Error::other("an event loop panicked")),
        }
    }
    result
}

struct Conn {
    stream: TcpStream,
    gen: u64,
    framer: LineFramer,
    write_buf: Vec<u8>,
    write_pos: usize,
    pending: VecDeque<(String, Instant)>,
    dispatched: bool,
    eof: bool,
    last_activity: Instant,
    interest: Interest,
}

impl Conn {
    fn write_pending(&self) -> bool {
        self.write_pos < self.write_buf.len()
    }
}

struct EventLoop {
    index: usize,
    poller: Box<dyn Poller>,
    waker: UnixStream,
    listener: Option<TcpListener>,
    peers: Vec<Arc<LoopShared>>,
    shared: Arc<LoopShared>,
    next_peer: usize,
    conns: Vec<Option<Conn>>,
    /// Per-slot generation counters; completions must match to apply, so
    /// a slot reused after a disconnect never receives a stale response.
    gens: Vec<u64>,
    free: Vec<usize>,
    /// Requests dispatched by this loop whose completions are still
    /// outstanding (counted across closed connections too — every
    /// dispatch produces exactly one completion).
    dispatched: usize,
    handler: Arc<dyn Handler>,
    stats: Arc<ReactorStats>,
    shutdown: Arc<AtomicU64>,
    draining_since: Option<Instant>,
    next_sweep: Instant,
    config: Config,
}

impl EventLoop {
    fn run(&mut self) -> io::Result<()> {
        let result = self.run_inner();
        // A fatal exit must not strand sibling loops mid-drain.
        self.shutdown.store(1, Ordering::SeqCst);
        for peer in &self.peers {
            peer.wake();
        }
        result
    }

    fn run_inner(&mut self) -> io::Result<()> {
        self.poller.register(self.waker.as_raw_fd(), TOKEN_WAKE, Interest::READ)?;
        if let Some(listener) = &self.listener {
            self.poller.register(listener.as_raw_fd(), TOKEN_LISTEN, Interest::READ)?;
        }
        let mut events: Vec<Event> = Vec::new();
        loop {
            let timeout = self.wait_timeout();
            events.clear();
            self.poller.wait(&mut events, timeout)?;
            self.drain_inbox();
            for &event in &events {
                match event.token {
                    TOKEN_WAKE => self.drain_waker(),
                    TOKEN_LISTEN => self.accept_ready(),
                    token => self.conn_ready(token - TOKEN_BASE, event),
                }
            }
            self.drain_inbox();
            self.sweep_idle();
            if self.shutting_down() && self.finish_shutdown() {
                return Ok(());
            }
        }
    }

    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst) != 0
    }

    fn wait_timeout(&self) -> Option<Duration> {
        let mut timeout = None;
        if self.config.idle_timeout.is_some() {
            let until = self.next_sweep.saturating_duration_since(Instant::now());
            timeout = Some(until.max(Duration::from_millis(1)));
        }
        if self.shutting_down() {
            // Re-check the drain deadline even if no event arrives.
            let cap = Duration::from_millis(50);
            timeout = Some(timeout.map_or(cap, |t: Duration| t.min(cap)));
        }
        timeout
    }

    fn drain_waker(&mut self) {
        let mut sink = [0u8; 256];
        loop {
            match (&self.waker).read(&mut sink) {
                Ok(0) => return,
                Ok(_) => continue,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return,
            }
        }
    }

    fn drain_inbox(&mut self) {
        let items = std::mem::take(&mut *self.shared.inbox.lock().expect("reactor inbox"));
        for item in items {
            match item {
                Inbound::Conn(stream) => self.adopt(stream),
                Inbound::Done(done) => self.complete(done),
            }
        }
    }

    fn accept_ready(&mut self) {
        loop {
            let Some(listener) = &self.listener else { return };
            match listener.accept() {
                Ok((stream, _)) => {
                    self.stats.connections_total.fetch_add(1, Ordering::Relaxed);
                    let target = self.next_peer % self.peers.len();
                    self.next_peer = self.next_peer.wrapping_add(1);
                    if target == self.index {
                        self.adopt(stream);
                    } else {
                        self.peers[target].push(Inbound::Conn(stream));
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) if e.kind() == io::ErrorKind::ConnectionAborted => continue,
                Err(_) => {
                    // Typically fd exhaustion; drop this round and let the
                    // level-triggered listener retry on the next wait.
                    self.stats.accept_errors.fetch_add(1, Ordering::Relaxed);
                    return;
                }
            }
        }
    }

    fn adopt(&mut self, stream: TcpStream) {
        if self.shutting_down() || stream.set_nonblocking(true).is_err() {
            return;
        }
        let slot = self.free.pop().unwrap_or_else(|| {
            self.conns.push(None);
            self.gens.push(0);
            self.conns.len() - 1
        });
        self.gens[slot] += 1;
        let fd = stream.as_raw_fd();
        let conn = Conn {
            stream,
            gen: self.gens[slot],
            framer: LineFramer::new(self.config.max_line_bytes),
            write_buf: Vec::new(),
            write_pos: 0,
            pending: VecDeque::new(),
            dispatched: false,
            eof: false,
            last_activity: Instant::now(),
            interest: Interest::READ,
        };
        if self.poller.register(fd, TOKEN_BASE + slot, Interest::READ).is_err() {
            self.free.push(slot);
            return;
        }
        self.conns[slot] = Some(conn);
        self.stats.connections_open.fetch_add(1, Ordering::Relaxed);
    }

    fn conn_ready(&mut self, slot: usize, event: Event) {
        if self.conns.get(slot).is_none_or(Option::is_none) {
            return;
        }
        if event.writable {
            self.flush(slot);
        }
        if event.readable {
            self.read_ready(slot);
        }
        self.after_io(slot);
    }

    fn read_ready(&mut self, slot: usize) {
        let mut scratch = [0u8; 16 * 1024];
        loop {
            let outcome = {
                let Some(conn) = self.conns[slot].as_mut() else { return };
                if conn.eof || conn.pending.len() >= self.config.pipeline_cap {
                    break;
                }
                conn.stream.read(&mut scratch)
            };
            match outcome {
                Ok(0) => {
                    let partial = {
                        let Some(conn) = self.conns[slot].as_mut() else { return };
                        conn.eof = true;
                        conn.framer.take_partial()
                    };
                    match partial {
                        // A truncated final line still gets handled (and
                        // booked), matching the blocking server's
                        // `BufRead::lines` EOF semantics.
                        Ok(Some(line)) if !line.trim().is_empty() => {
                            self.stats.lines_framed.fetch_add(1, Ordering::Relaxed);
                            if let Some(conn) = self.conns[slot].as_mut() {
                                conn.pending.push_back((line, Instant::now()));
                            }
                        }
                        Ok(_) => {}
                        Err(_) => {
                            self.close(slot);
                            return;
                        }
                    }
                    break;
                }
                Ok(n) => {
                    if let Some(conn) = self.conns[slot].as_mut() {
                        conn.last_activity = Instant::now();
                        conn.framer.push(&scratch[..n]);
                    }
                    if !self.pull_lines(slot) {
                        return;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close(slot);
                    return;
                }
            }
        }
        self.try_dispatch(slot);
    }

    /// Moves complete lines from the framer to the pending queue; false
    /// means the connection was closed for a framing error.
    fn pull_lines(&mut self, slot: usize) -> bool {
        loop {
            let Some(conn) = self.conns[slot].as_mut() else { return false };
            if conn.pending.len() >= self.config.pipeline_cap {
                return true;
            }
            match conn.framer.next_line() {
                Ok(Some(line)) => {
                    if line.trim().is_empty() {
                        continue;
                    }
                    conn.pending.push_back((line, Instant::now()));
                    self.stats.lines_framed.fetch_add(1, Ordering::Relaxed);
                }
                Ok(None) => return true,
                Err(FrameError::Oversized(_)) => {
                    self.stats.overflow_closed.fetch_add(1, Ordering::Relaxed);
                    self.close(slot);
                    return false;
                }
                Err(FrameError::Utf8) => {
                    self.close(slot);
                    return false;
                }
            }
        }
    }

    fn try_dispatch(&mut self, slot: usize) {
        if self.shutting_down() {
            return;
        }
        let Some(conn) = self.conns[slot].as_mut() else { return };
        if conn.dispatched {
            return;
        }
        let Some((line, ready)) = conn.pending.pop_front() else { return };
        conn.dispatched = true;
        let gen = conn.gen;
        self.dispatched += 1;
        let responder = Responder { target: Some(Arc::clone(&self.shared)), slot, gen };
        let handler = Arc::clone(&self.handler);
        handler.on_line(line, ready, responder);
    }

    fn complete(&mut self, done: Completion) {
        // Every dispatch produces exactly one completion, even for
        // connections that died first.
        self.dispatched = self.dispatched.saturating_sub(1);
        let live = self.conns.get_mut(done.slot).and_then(Option::as_mut);
        let valid = live.as_ref().is_some_and(|conn| conn.gen == done.gen);
        if !valid {
            self.stats.stale_completions.fetch_add(1, Ordering::Relaxed);
        } else if let Some(conn) = live {
            conn.dispatched = false;
            conn.last_activity = Instant::now();
            if !done.response.is_empty() {
                conn.write_buf.extend_from_slice(done.response.as_bytes());
                conn.write_buf.push(b'\n');
            }
            self.flush(done.slot);
        }
        if done.control == Control::Shutdown && !self.shutting_down() {
            self.shutdown.store(1, Ordering::SeqCst);
            for peer in &self.peers {
                peer.wake();
            }
        }
        if valid {
            self.pull_lines(done.slot);
            self.try_dispatch(done.slot);
            self.after_io(done.slot);
        }
    }

    fn flush(&mut self, slot: usize) {
        loop {
            let outcome = {
                let Some(conn) = self.conns[slot].as_mut() else { return };
                if !conn.write_pending() {
                    conn.write_buf.clear();
                    conn.write_pos = 0;
                    return;
                }
                conn.stream.write(&conn.write_buf[conn.write_pos..])
            };
            match outcome {
                Ok(0) => {
                    self.stats.write_errors.fetch_add(1, Ordering::Relaxed);
                    self.close(slot);
                    return;
                }
                Ok(n) => {
                    if let Some(conn) = self.conns[slot].as_mut() {
                        conn.write_pos += n;
                        conn.last_activity = Instant::now();
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.stats.write_errors.fetch_add(1, Ordering::Relaxed);
                    self.close(slot);
                    return;
                }
            }
        }
    }

    /// Settles a connection after any I/O: closes it when finished,
    /// otherwise reconciles its poller interest with its state.
    fn after_io(&mut self, slot: usize) {
        let shutting_down = self.shutting_down();
        let (finished, desired, current, fd) = {
            let Some(conn) = self.conns[slot].as_ref() else { return };
            let write_pending = conn.write_pending();
            let drained = !conn.dispatched && conn.pending.is_empty();
            let finished = (conn.eof || shutting_down) && !write_pending && drained;
            let desired = Interest {
                readable: !conn.eof
                    && !shutting_down
                    && conn.pending.len() < self.config.pipeline_cap,
                writable: write_pending,
            };
            (finished, desired, conn.interest, conn.stream.as_raw_fd())
        };
        if finished {
            self.close(slot);
            return;
        }
        if desired != current {
            if self.poller.reregister(fd, TOKEN_BASE + slot, desired).is_err() {
                self.close(slot);
                return;
            }
            if let Some(conn) = self.conns[slot].as_mut() {
                conn.interest = desired;
            }
        }
    }

    fn close(&mut self, slot: usize) {
        let Some(conn) = self.conns[slot].take() else { return };
        let _ = self.poller.deregister(conn.stream.as_raw_fd(), TOKEN_BASE + slot);
        self.free.push(slot);
        self.stats.connections_open.fetch_sub(1, Ordering::Relaxed);
        // An in-flight completion for this conn resolves by gen mismatch.
    }

    fn sweep_idle(&mut self) {
        let Some(idle) = self.config.idle_timeout else { return };
        let now = Instant::now();
        if now < self.next_sweep {
            return;
        }
        let period = (idle / 4).clamp(Duration::from_millis(10), Duration::from_secs(1));
        self.next_sweep = now + period;
        let doomed: Vec<usize> = self
            .conns
            .iter()
            .enumerate()
            .filter_map(|(slot, conn)| {
                let conn = conn.as_ref()?;
                // A connection waiting on its own request is working, not
                // idle — never reap it out from under the analysis.
                (!conn.dispatched && now.duration_since(conn.last_activity) >= idle).then_some(slot)
            })
            .collect();
        for slot in doomed {
            self.stats.idle_closed.fetch_add(1, Ordering::Relaxed);
            self.close(slot);
        }
    }

    /// Drives the drain; true once this loop has nothing left to do.
    fn finish_shutdown(&mut self) -> bool {
        if self.draining_since.is_none() {
            self.draining_since = Some(Instant::now());
            if let Some(listener) = self.listener.take() {
                let _ = self.poller.deregister(listener.as_raw_fd(), TOKEN_LISTEN);
            }
            for slot in 0..self.conns.len() {
                if let Some(conn) = self.conns[slot].as_mut() {
                    conn.pending.clear();
                }
                self.after_io(slot); // closes drained conns, drops read interest
            }
        }
        let deadline_passed =
            self.draining_since.is_some_and(|since| since.elapsed() >= self.config.drain_timeout);
        let write_pending = self.conns.iter().flatten().any(Conn::write_pending);
        if (self.dispatched == 0 && !write_pending) || deadline_passed {
            for slot in 0..self.conns.len() {
                self.close(slot);
            }
            return true;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader, BufWriter};
    use std::net::TcpStream;

    /// Echoes `echo:<line>`; `slow` lines answer from a worker thread
    /// after a delay; `quit` shuts the reactor down.
    struct EchoHandler;

    impl Handler for EchoHandler {
        fn on_line(&self, line: String, _ready: Instant, responder: Responder) {
            match line.as_str() {
                "quit" => responder.send_with("bye".to_string(), Control::Shutdown),
                "drop" => drop(responder),
                slow if slow.starts_with("slow:") => {
                    let line = line.clone();
                    std::thread::spawn(move || {
                        std::thread::sleep(Duration::from_millis(30));
                        responder.send(format!("echo:{line}"));
                    });
                }
                _ => responder.send(format!("echo:{line}")),
            }
        }
    }

    fn spawn_reactor(
        config: Config,
    ) -> (std::net::SocketAddr, Arc<ReactorStats>, std::thread::JoinHandle<io::Result<()>>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let stats = Arc::new(ReactorStats::default());
        let stats_clone = Arc::clone(&stats);
        let thread =
            std::thread::spawn(move || run(listener, Arc::new(EchoHandler), &config, stats_clone));
        (addr, stats, thread)
    }

    fn poller_kinds() -> Vec<PollerKind> {
        #[cfg(target_os = "linux")]
        return vec![PollerKind::Epoll, PollerKind::Poll];
        #[cfg(not(target_os = "linux"))]
        return vec![PollerKind::Poll];
    }

    #[test]
    fn echoes_pipelined_lines_in_order_and_shuts_down() {
        for poller in poller_kinds() {
            let (addr, stats, thread) =
                spawn_reactor(Config { poller, event_threads: 2, ..Config::default() });
            let stream = TcpStream::connect(addr).unwrap();
            let mut writer = BufWriter::new(stream.try_clone().unwrap());
            let mut reader = BufReader::new(stream);
            // A pipelined burst (incl. a slow off-thread response and a
            // dropped responder) must come back in order, minus the drop.
            write!(writer, "a\nslow:b\n\nc\ndrop\nd\n").unwrap();
            writer.flush().unwrap();
            for expected in ["echo:a", "echo:slow:b", "echo:c", "echo:d"] {
                let mut line = String::new();
                reader.read_line(&mut line).unwrap();
                assert_eq!(line.trim_end(), expected, "poller {poller:?}");
            }
            writeln!(writer, "quit").unwrap();
            writer.flush().unwrap();
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            assert_eq!(line.trim_end(), "bye");
            thread.join().unwrap().unwrap();
            assert_eq!(stats.lines_framed(), 6);
            assert_eq!(stats.connections_total(), 1);
            assert_eq!(stats.connections_open(), 0, "shutdown closes everything");
        }
    }

    #[test]
    fn many_connections_multiplex_over_few_event_threads() {
        let (addr, stats, thread) = spawn_reactor(Config { event_threads: 2, ..Config::default() });
        let mut clients: Vec<(BufWriter<TcpStream>, BufReader<TcpStream>)> = (0..32)
            .map(|_| {
                let stream = TcpStream::connect(addr).unwrap();
                (BufWriter::new(stream.try_clone().unwrap()), BufReader::new(stream))
            })
            .collect();
        for (i, (writer, _)) in clients.iter_mut().enumerate() {
            writeln!(writer, "slow:{i}").unwrap();
            writer.flush().unwrap();
        }
        for (i, (_, reader)) in clients.iter_mut().enumerate() {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            assert_eq!(line.trim_end(), format!("echo:slow:{i}"));
        }
        assert_eq!(stats.connections_open(), 32);
        drop(clients);
        let (addr, quit) = (addr, "quit\n");
        let stream = TcpStream::connect(addr).unwrap();
        let mut writer = BufWriter::new(stream.try_clone().unwrap());
        write!(writer, "{quit}").unwrap();
        writer.flush().unwrap();
        let mut line = String::new();
        BufReader::new(stream).read_line(&mut line).unwrap();
        thread.join().unwrap().unwrap();
    }

    #[test]
    fn idle_connections_are_reaped_without_stalling_active_ones() {
        let (addr, stats, thread) = spawn_reactor(Config {
            idle_timeout: Some(Duration::from_millis(80)),
            ..Config::default()
        });
        // The slowloris: dribbles half a line and then stalls.
        let mut slow = TcpStream::connect(addr).unwrap();
        slow.write_all(b"{\"cmd\":\"nev").unwrap();
        // The active client keeps talking the whole time.
        let active = TcpStream::connect(addr).unwrap();
        let mut writer = BufWriter::new(active.try_clone().unwrap());
        let mut reader = BufReader::new(active);
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            writeln!(writer, "ping").unwrap();
            writer.flush().unwrap();
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            assert_eq!(line.trim_end(), "echo:ping");
            if stats.idle_closed() >= 1 {
                break;
            }
            assert!(Instant::now() < deadline, "slowloris never reaped");
            std::thread::sleep(Duration::from_millis(20));
        }
        // The reaped socket observes EOF (or reset).
        slow.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
        let mut sink = [0u8; 8];
        match slow.read(&mut sink) {
            Ok(0) | Err(_) => {}
            Ok(n) => panic!("reaped connection produced {n} bytes"),
        }
        writeln!(writer, "quit").unwrap();
        writer.flush().unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        thread.join().unwrap().unwrap();
    }

    #[test]
    fn oversized_lines_close_only_their_connection() {
        let (addr, stats, thread) =
            spawn_reactor(Config { max_line_bytes: 64, ..Config::default() });
        let mut hog = TcpStream::connect(addr).unwrap();
        hog.write_all(&[b'x'; 256]).unwrap();
        hog.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
        let mut sink = [0u8; 8];
        match hog.read(&mut sink) {
            Ok(0) | Err(_) => {}
            Ok(n) => panic!("oversized connection produced {n} bytes"),
        }
        assert!(stats.overflow_closed() >= 1);
        let stream = TcpStream::connect(addr).unwrap();
        let mut writer = BufWriter::new(stream.try_clone().unwrap());
        let mut reader = BufReader::new(stream);
        writeln!(writer, "ok").unwrap();
        writer.flush().unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line.trim_end(), "echo:ok");
        writeln!(writer, "quit").unwrap();
        writer.flush().unwrap();
        line.clear();
        reader.read_line(&mut line).unwrap();
        thread.join().unwrap().unwrap();
    }

    #[test]
    fn disconnect_with_request_in_flight_leaves_the_reactor_serving() {
        let (addr, stats, thread) =
            spawn_reactor(Config { max_line_bytes: 64, ..Config::default() });
        let mut doomed = TcpStream::connect(addr).unwrap();
        doomed.write_all(b"slow:gone\n").unwrap();
        // Wait until the slow request is in flight, then hit the framing
        // cap: the connection closes while its completion is pending, so
        // the completion must resolve by generation mismatch.
        let deadline = Instant::now() + Duration::from_secs(5);
        while stats.lines_framed() == 0 {
            assert!(Instant::now() < deadline, "slow request never framed");
            std::thread::sleep(Duration::from_millis(5));
        }
        doomed.write_all(&[b'x'; 256]).unwrap();
        while stats.stale_completions() == 0 {
            assert!(Instant::now() < deadline, "stale completion never recorded");
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(stats.overflow_closed(), 1);
        drop(doomed);
        let stream = TcpStream::connect(addr).unwrap();
        let mut writer = BufWriter::new(stream.try_clone().unwrap());
        let mut reader = BufReader::new(stream);
        writeln!(writer, "still-here").unwrap();
        writer.flush().unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line.trim_end(), "echo:still-here");
        writeln!(writer, "quit").unwrap();
        writer.flush().unwrap();
        line.clear();
        reader.read_line(&mut line).unwrap();
        thread.join().unwrap().unwrap();
    }

    #[test]
    fn truncated_final_line_is_still_delivered() {
        let (addr, stats, thread) = spawn_reactor(Config::default());
        {
            let mut partial = TcpStream::connect(addr).unwrap();
            partial.write_all(b"tail-no-newline").unwrap();
            partial.shutdown(std::net::Shutdown::Write).unwrap();
            let mut reader = BufReader::new(partial);
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            assert_eq!(line.trim_end(), "echo:tail-no-newline");
        }
        let stream = TcpStream::connect(addr).unwrap();
        let mut writer = BufWriter::new(stream.try_clone().unwrap());
        writeln!(writer, "quit").unwrap();
        writer.flush().unwrap();
        let mut line = String::new();
        BufReader::new(stream).read_line(&mut line).unwrap();
        thread.join().unwrap().unwrap();
        assert_eq!(stats.lines_framed(), 2);
    }
}
