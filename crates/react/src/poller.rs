//! Readiness notification behind a trait: level-triggered `epoll` on
//! Linux, portable `poll(2)` everywhere, selectable at runtime so the
//! fallback stays covered by tests on Linux too.

use std::io;
use std::os::unix::io::RawFd;
use std::time::Duration;

use crate::sys;

/// What a registration wants to hear about. Error/hangup conditions are
/// always reported, as with the underlying syscalls.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd is readable (or the peer hung up).
    pub readable: bool,
    /// Wake when the fd accepts writes.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest, the state every connection starts in.
    pub const READ: Interest = Interest { readable: true, writable: false };
}

/// One readiness event out of [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the fd was registered under.
    pub token: usize,
    /// Readable — includes error/hangup conditions, so a follow-up
    /// `read` observes the failure instead of the loop spinning.
    pub readable: bool,
    /// Writable.
    pub writable: bool,
    /// The peer hung up or the fd errored.
    pub hangup: bool,
}

/// A level-triggered readiness source. One instance per event loop;
/// none of the methods are re-entrant.
pub trait Poller: Send {
    /// Starts watching `fd` under `token`.
    ///
    /// # Errors
    ///
    /// Propagates the OS error (epoll) or a duplicate-token error.
    fn register(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()>;

    /// Changes the interest set of an already-registered fd.
    ///
    /// # Errors
    ///
    /// Propagates the OS error, or reports an unknown token.
    fn reregister(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()>;

    /// Stops watching `fd`.
    ///
    /// # Errors
    ///
    /// Propagates the OS error; unknown tokens are ignored.
    fn deregister(&mut self, fd: RawFd, token: usize) -> io::Result<()>;

    /// Blocks until readiness or `timeout` (`None` blocks indefinitely),
    /// appending events to `events` (which the caller clears).
    ///
    /// # Errors
    ///
    /// Propagates the OS error. `EINTR` is retried internally.
    fn wait(&mut self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()>;

    /// The backend's name, for banners and diagnostics.
    fn name(&self) -> &'static str;
}

/// Which poller backend to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PollerKind {
    /// `epoll` where available (Linux), else `poll`.
    #[default]
    Auto,
    /// Force `epoll`; errors on platforms without it.
    Epoll,
    /// Force the portable `poll(2)` backend.
    Poll,
}

impl PollerKind {
    /// Parses `auto`/`epoll`/`poll`.
    ///
    /// # Errors
    ///
    /// Returns the unrecognized name.
    pub fn parse(name: &str) -> Result<PollerKind, String> {
        match name {
            "auto" => Ok(PollerKind::Auto),
            "epoll" => Ok(PollerKind::Epoll),
            "poll" => Ok(PollerKind::Poll),
            other => Err(format!("unknown poller `{other}` (expected auto|epoll|poll)")),
        }
    }

    /// Instantiates the backend.
    ///
    /// # Errors
    ///
    /// Propagates epoll-instance creation errors; `Epoll` off Linux is
    /// [`io::ErrorKind::Unsupported`].
    pub fn create(self) -> io::Result<Box<dyn Poller>> {
        match self {
            #[cfg(target_os = "linux")]
            PollerKind::Auto | PollerKind::Epoll => Ok(Box::new(EpollPoller::new()?)),
            #[cfg(not(target_os = "linux"))]
            PollerKind::Auto => Ok(Box::new(PollPoller::new())),
            #[cfg(not(target_os = "linux"))]
            PollerKind::Epoll => {
                Err(io::Error::new(io::ErrorKind::Unsupported, "epoll requires Linux"))
            }
            PollerKind::Poll => Ok(Box::new(PollPoller::new())),
        }
    }
}

/// Converts a wait timeout to the millisecond argument both syscalls
/// take: `None` → block (-1), sub-millisecond waits round up to 1 ms so
/// a pending deadline is never spun on.
fn timeout_ms(timeout: Option<Duration>) -> i32 {
    match timeout {
        None => -1,
        Some(d) if d.is_zero() => 0,
        Some(d) => i32::try_from(d.as_millis().max(1)).unwrap_or(i32::MAX),
    }
}

/// The Linux backend: one epoll instance, O(ready) wakeups.
#[cfg(target_os = "linux")]
#[derive(Debug)]
pub struct EpollPoller {
    epfd: RawFd,
    buf: Vec<sys::EpollEvent>,
}

#[cfg(target_os = "linux")]
impl EpollPoller {
    /// Creates the epoll instance.
    ///
    /// # Errors
    ///
    /// Propagates `epoll_create1` failure.
    pub fn new() -> io::Result<EpollPoller> {
        Ok(EpollPoller {
            epfd: sys::epoll_create()?,
            buf: vec![sys::EpollEvent { events: 0, data: 0 }; 1024],
        })
    }

    fn mask(interest: Interest) -> u32 {
        let mut mask = sys::EPOLLRDHUP;
        if interest.readable {
            mask |= sys::EPOLLIN;
        }
        if interest.writable {
            mask |= sys::EPOLLOUT;
        }
        mask
    }
}

#[cfg(target_os = "linux")]
impl Drop for EpollPoller {
    fn drop(&mut self) {
        sys::close_fd(self.epfd);
    }
}

#[cfg(target_os = "linux")]
impl Poller for EpollPoller {
    fn register(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        sys::epoll_control(self.epfd, sys::EPOLL_CTL_ADD, fd, Self::mask(interest), token as u64)
    }

    fn reregister(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        sys::epoll_control(self.epfd, sys::EPOLL_CTL_MOD, fd, Self::mask(interest), token as u64)
    }

    fn deregister(&mut self, fd: RawFd, _token: usize) -> io::Result<()> {
        sys::epoll_control(self.epfd, sys::EPOLL_CTL_DEL, fd, 0, 0)
    }

    fn wait(&mut self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        let n = sys::epoll_wait_events(self.epfd, &mut self.buf, timeout_ms(timeout))?;
        for raw in &self.buf[..n] {
            let bits = raw.events;
            events.push(Event {
                token: raw.data as usize,
                readable: bits
                    & (sys::EPOLLIN
                        | sys::EPOLLPRI
                        | sys::EPOLLHUP
                        | sys::EPOLLERR
                        | sys::EPOLLRDHUP)
                    != 0,
                writable: bits & sys::EPOLLOUT != 0,
                hangup: bits & (sys::EPOLLHUP | sys::EPOLLERR) != 0,
            });
        }
        Ok(())
    }

    fn name(&self) -> &'static str {
        "epoll"
    }
}

/// The portable backend: rebuilds the `pollfd` array per wait. O(n) per
/// wakeup, which is fine for the fallback role and for tests.
#[derive(Debug, Default)]
pub struct PollPoller {
    entries: Vec<(usize, RawFd, Interest)>,
    fds: Vec<sys::PollFd>,
}

impl PollPoller {
    /// An empty poll set.
    pub fn new() -> PollPoller {
        PollPoller::default()
    }
}

impl Poller for PollPoller {
    fn register(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        if self.entries.iter().any(|(t, ..)| *t == token) {
            return Err(io::Error::new(io::ErrorKind::AlreadyExists, "token already registered"));
        }
        self.entries.push((token, fd, interest));
        Ok(())
    }

    fn reregister(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        for entry in &mut self.entries {
            if entry.0 == token {
                *entry = (token, fd, interest);
                return Ok(());
            }
        }
        Err(io::Error::new(io::ErrorKind::NotFound, "token not registered"))
    }

    fn deregister(&mut self, _fd: RawFd, token: usize) -> io::Result<()> {
        self.entries.retain(|(t, ..)| *t != token);
        Ok(())
    }

    fn wait(&mut self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        self.fds.clear();
        for (_, fd, interest) in &self.entries {
            let mut mask = 0;
            if interest.readable {
                mask |= sys::POLLIN;
            }
            if interest.writable {
                mask |= sys::POLLOUT;
            }
            self.fds.push(sys::PollFd { fd: *fd, events: mask, revents: 0 });
        }
        let n = sys::poll_fds(&mut self.fds, timeout_ms(timeout))?;
        if n == 0 {
            return Ok(());
        }
        for (entry, pollfd) in self.entries.iter().zip(&self.fds) {
            let bits = pollfd.revents;
            if bits == 0 {
                continue;
            }
            events.push(Event {
                token: entry.0,
                readable: bits
                    & (sys::POLLIN | sys::POLLPRI | sys::POLLHUP | sys::POLLERR | sys::POLLNVAL)
                    != 0,
                writable: bits & sys::POLLOUT != 0,
                hangup: bits & (sys::POLLHUP | sys::POLLERR | sys::POLLNVAL) != 0,
            });
        }
        Ok(())
    }

    fn name(&self) -> &'static str {
        "poll"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::os::unix::io::AsRawFd;
    use std::os::unix::net::UnixStream;

    fn backend_reports_readiness(mut poller: Box<dyn Poller>) {
        let (mut a, b) = UnixStream::pair().unwrap();
        b.set_nonblocking(true).unwrap();
        poller.register(b.as_raw_fd(), 7, Interest::READ).unwrap();

        // Nothing pending: a zero timeout returns no events.
        let mut events = Vec::new();
        poller.wait(&mut events, Some(Duration::ZERO)).unwrap();
        assert!(events.is_empty(), "spurious events: {events:?}");

        a.write_all(b"x").unwrap();
        poller.wait(&mut events, Some(Duration::from_secs(2))).unwrap();
        assert!(events.iter().any(|e| e.token == 7 && e.readable), "{events:?}");

        // Write interest fires immediately on an empty socket buffer.
        events.clear();
        poller.reregister(b.as_raw_fd(), 7, Interest { readable: true, writable: true }).unwrap();
        poller.wait(&mut events, Some(Duration::from_secs(2))).unwrap();
        assert!(events.iter().any(|e| e.token == 7 && e.writable), "{events:?}");

        // Peer hangup surfaces as readable (so a read observes EOF).
        let mut buf = [0u8; 8];
        let mut b_read = &b;
        let _ = b_read.read(&mut buf);
        drop(a);
        events.clear();
        poller.wait(&mut events, Some(Duration::from_secs(2))).unwrap();
        assert!(events.iter().any(|e| e.token == 7 && e.readable), "{events:?}");

        poller.deregister(b.as_raw_fd(), 7).unwrap();
        events.clear();
        poller.wait(&mut events, Some(Duration::ZERO)).unwrap();
        assert!(events.is_empty(), "deregistered fd still fires: {events:?}");
    }

    #[test]
    fn poll_backend_reports_readiness() {
        backend_reports_readiness(PollerKind::Poll.create().unwrap());
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn epoll_backend_reports_readiness() {
        backend_reports_readiness(PollerKind::Epoll.create().unwrap());
    }

    #[test]
    fn kind_parses_and_rejects() {
        assert_eq!(PollerKind::parse("auto").unwrap(), PollerKind::Auto);
        assert_eq!(PollerKind::parse("epoll").unwrap(), PollerKind::Epoll);
        assert_eq!(PollerKind::parse("poll").unwrap(), PollerKind::Poll);
        assert!(PollerKind::parse("kqueue").is_err());
    }

    #[test]
    fn poll_backend_rejects_duplicate_and_unknown_tokens() {
        let mut poller = PollPoller::new();
        let (_a, b) = UnixStream::pair().unwrap();
        poller.register(b.as_raw_fd(), 1, Interest::READ).unwrap();
        assert!(poller.register(b.as_raw_fd(), 1, Interest::READ).is_err());
        assert!(poller.reregister(b.as_raw_fd(), 99, Interest::READ).is_err());
        poller.deregister(b.as_raw_fd(), 99).unwrap(); // unknown: ignored
    }
}
