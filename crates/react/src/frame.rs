//! The per-connection line-framing state machine.
//!
//! Bytes arrive in arbitrary chunks; the framer accumulates them and
//! yields complete `\n`-terminated lines (with the terminator and any
//! trailing `\r` stripped, matching `BufRead::lines`). A line that grows
//! past the configured cap without a terminator is a framing error —
//! the caller closes the connection instead of buffering without bound.

/// Why framing failed; both are fatal for the connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// A single line exceeded the cap (bytes buffered so far).
    Oversized(usize),
    /// The line was not valid UTF-8.
    Utf8,
}

/// Accumulates received bytes and yields complete lines.
#[derive(Debug)]
pub struct LineFramer {
    buf: Vec<u8>,
    /// Bytes before `start` belong to already-yielded lines.
    start: usize,
    /// Absolute index up to which `buf` has been scanned for `\n`, so
    /// repeated [`next_line`](LineFramer::next_line) calls stay O(bytes).
    scanned: usize,
    max_line: usize,
}

impl LineFramer {
    /// A framer that rejects lines longer than `max_line` bytes.
    pub fn new(max_line: usize) -> LineFramer {
        LineFramer { buf: Vec::new(), start: 0, scanned: 0, max_line }
    }

    /// Appends received bytes.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered toward the next (incomplete) line.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Yields the next complete line, `Ok(None)` when more bytes are
    /// needed.
    ///
    /// # Errors
    ///
    /// [`FrameError::Oversized`] once the unterminated tail passes the
    /// cap, [`FrameError::Utf8`] for an invalid line.
    pub fn next_line(&mut self) -> Result<Option<String>, FrameError> {
        match self.buf[self.scanned..].iter().position(|b| *b == b'\n') {
            Some(offset) => {
                let newline = self.scanned + offset;
                if newline - self.start > self.max_line {
                    return Err(FrameError::Oversized(newline - self.start));
                }
                let mut end = newline;
                if end > self.start && self.buf[end - 1] == b'\r' {
                    end -= 1;
                }
                let line = std::str::from_utf8(&self.buf[self.start..end])
                    .map_err(|_| FrameError::Utf8)?
                    .to_string();
                self.start = newline + 1;
                self.scanned = self.start;
                self.compact();
                Ok(Some(line))
            }
            None => {
                self.scanned = self.buf.len();
                if self.buffered() > self.max_line {
                    Err(FrameError::Oversized(self.buffered()))
                } else {
                    Ok(None)
                }
            }
        }
    }

    /// Takes the unterminated tail as a final line (EOF semantics,
    /// matching `BufRead::lines` yielding a last segment without `\n`).
    ///
    /// # Errors
    ///
    /// [`FrameError::Utf8`] for an invalid tail.
    pub fn take_partial(&mut self) -> Result<Option<String>, FrameError> {
        if self.buffered() == 0 {
            return Ok(None);
        }
        let mut end = self.buf.len();
        if self.buf[end - 1] == b'\r' {
            end -= 1;
        }
        let line = std::str::from_utf8(&self.buf[self.start..end])
            .map_err(|_| FrameError::Utf8)?
            .to_string();
        self.buf.clear();
        self.start = 0;
        self.scanned = 0;
        Ok(Some(line))
    }

    /// Drops the consumed prefix once it dominates the buffer, keeping
    /// the footprint proportional to unconsumed bytes.
    fn compact(&mut self) {
        if self.start >= 4096 && self.start * 2 >= self.buf.len() {
            self.buf.drain(..self.start);
            self.scanned -= self.start;
            self.start = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_lines_across_arbitrary_chunks() {
        let mut f = LineFramer::new(1024);
        f.push(b"{\"cmd\":");
        assert_eq!(f.next_line().unwrap(), None);
        f.push(b"\"ping\"}\n{\"cmd\":\"statusz\"}\r\npartial");
        assert_eq!(f.next_line().unwrap().as_deref(), Some("{\"cmd\":\"ping\"}"));
        assert_eq!(f.next_line().unwrap().as_deref(), Some("{\"cmd\":\"statusz\"}"));
        assert_eq!(f.next_line().unwrap(), None);
        assert_eq!(f.buffered(), 7);
        assert_eq!(f.take_partial().unwrap().as_deref(), Some("partial"));
        assert_eq!(f.take_partial().unwrap(), None);
    }

    #[test]
    fn empty_lines_are_yielded_for_the_caller_to_skip() {
        let mut f = LineFramer::new(64);
        f.push(b"\n\r\nx\n");
        assert_eq!(f.next_line().unwrap().as_deref(), Some(""));
        assert_eq!(f.next_line().unwrap().as_deref(), Some(""));
        assert_eq!(f.next_line().unwrap().as_deref(), Some("x"));
    }

    #[test]
    fn oversized_lines_are_fatal_terminated_or_not() {
        let mut f = LineFramer::new(8);
        f.push(b"123456789"); // 9 unterminated bytes > 8
        assert_eq!(f.next_line(), Err(FrameError::Oversized(9)));

        let mut f = LineFramer::new(8);
        f.push(b"123456789\n");
        assert_eq!(f.next_line(), Err(FrameError::Oversized(9)));

        let mut f = LineFramer::new(8);
        f.push(b"12345678\nok\n");
        assert_eq!(f.next_line().unwrap().as_deref(), Some("12345678"));
        assert_eq!(f.next_line().unwrap().as_deref(), Some("ok"));
    }

    #[test]
    fn invalid_utf8_is_fatal() {
        let mut f = LineFramer::new(64);
        f.push(&[0xff, 0xfe, b'\n']);
        assert_eq!(f.next_line(), Err(FrameError::Utf8));
        let mut f = LineFramer::new(64);
        f.push(&[0xff]);
        assert_eq!(f.take_partial(), Err(FrameError::Utf8));
    }

    #[test]
    fn compaction_keeps_the_footprint_bounded() {
        let mut f = LineFramer::new(128);
        let line = [b'a'; 64];
        for _ in 0..1024 {
            f.push(&line);
            f.push(b"\n");
            assert!(f.next_line().unwrap().is_some());
        }
        assert!(f.buf.len() < 16 * 1024, "buffer grew to {} bytes", f.buf.len());
    }
}
