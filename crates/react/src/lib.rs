//! rtreact — a vendored, std-only nonblocking reactor for rtserver.
//!
//! The crate multiplexes thousands of NDJSON connections over a few
//! event threads: readiness comes from an epoll backend on Linux (or a
//! portable `poll(2)` fallback) behind the [`Poller`] trait, bytes are
//! framed into lines by [`LineFramer`], and the event loops in
//! [`reactor`] own all connection state — per-connection read/write
//! buffers, bounded pipelining, idle reaping, and a draining shutdown.
//! CPU-bound work never runs on an event thread: the embedding server's
//! [`Handler`] hands requests to its own pool and answers through a
//! [`Responder`].
//!
//! The outbound half is [`PeerClient`]: a blocking, deadline-bounded
//! NDJSON client with per-peer connection reuse, used by rtserver's
//! cluster mode to fetch cached artifacts from owner nodes.
//!
//! Like `rtpar`, the crate is vendored into the workspace and depends
//! only on `std` (the handful of libc entry points it needs are declared
//! by hand in a private FFI module).

#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

#[cfg(not(unix))]
compile_error!("rtreact requires a Unix platform (epoll or poll readiness)");

mod client;
mod frame;
mod poller;
mod reactor;
mod sys;

pub use client::PeerClient;
pub use frame::{FrameError, LineFramer};
#[cfg(target_os = "linux")]
pub use poller::EpollPoller;
pub use poller::{Event, Interest, PollPoller, Poller, PollerKind};
pub use reactor::{run, Config, Control, Handler, ReactorStats, Responder};
pub use sys::{nofile_limit, raise_nofile_limit, Rlimit};
