//! rtfuzz: the continuous soundness-fuzzing farm.
//!
//! The analysis pipeline's central claims — analyzed CRPD dominates
//! ground-truth reloads, Eq. 7 WCRTs dominate measured response times,
//! and the packed Eq. 2/3 kernel is bit-equivalent to the exact tree
//! walk — are re-proven here on *randomly generated* systems instead of
//! a handful of hand-written ones:
//!
//! - [`spec::generate`] derives a complete multi-task system from a seed
//!   (data layout, loop shape, WCET-relative periods, cache geometry
//!   4–64 sets × 1–8 ways, all four CRPD approaches, 1/8 analysis
//!   threads);
//! - [`oracle::check`] runs the full `AnalyzedProgram` → `CrpdMatrix` →
//!   WCRT pipeline and the scheduler co-simulation, and compares;
//! - [`reduce::shrink_spec`] minimizes failures (drop tasks, halve
//!   footprints, shrink loops, reduce the cache) to a committed `.spec`
//!   reproducer;
//! - [`campaign::run_campaign`] fans points out over [`rtpar`] with
//!   index-ordered, seed-reproducible reporting, and
//!   [`campaign::replay_corpus`] replays `tests/corpus/` on every
//!   `cargo test`.
//!
//! The farm self-tests by injecting a known-unsound mutation
//! ([`oracle::Injection::ScaleCrpd`]) and asserting the campaign finds
//! and shrinks it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod oracle;
pub mod reduce;
pub mod spec;

pub use campaign::{replay_corpus, run_campaign, CampaignOptions, CampaignReport, ReplayReport};
pub use oracle::{check, CheckOutcome, Injection, OracleCounts, Violation, ViolationKind};
pub use reduce::shrink_spec;
pub use spec::{generate, FuzzSpec, TaskSpec};
