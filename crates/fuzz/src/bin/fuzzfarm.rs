//! The soundness-fuzzing farm driver.
//!
//! ```text
//! cargo run --release -p rtfuzz --bin fuzzfarm -- --seconds 30
//! fuzzfarm --points 100000 --seed 0 --json-out BENCH_fuzz.json
//! fuzzfarm --replay tests/corpus            # regression corpus replay
//! fuzzfarm --inject-scale 9/10 --points 5000 --corpus-out repro/
//! fuzzfarm --emit-corpus 4 --corpus-out tests/corpus --seed 100
//! ```
//!
//! A campaign evaluates seeded points (`--seed` upward) in parallel
//! batches on an [`rtpar`] pool (`--threads`), bounded by `--points`
//! and/or `--seconds`, and publishes stats to `BENCH_fuzz.json`. Any
//! oracle violation is shrunk to a minimal reproducer; with
//! `--corpus-out DIR` the reproducer `.spec` files are written there so
//! they can be committed to `tests/corpus/`. The process exits non-zero
//! if any violation was found (or, for `--replay`, if any corpus file
//! fails), so CI can gate on it.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Duration;

use rtfuzz::oracle::Injection;
use rtfuzz::{replay_corpus, run_campaign, CampaignOptions};

struct Options {
    points: Option<u64>,
    seconds: Option<u64>,
    seed: u64,
    threads: usize,
    json_out: String,
    corpus_out: Option<PathBuf>,
    replay: Option<PathBuf>,
    inject_scale: Option<(u64, u64)>,
    emit_corpus: Option<u64>,
    stop_after: usize,
    heartbeat_secs: u64,
}

fn parse_options() -> Result<Options, String> {
    let mut opts = Options {
        points: None,
        seconds: None,
        seed: 0,
        threads: 8,
        json_out: "BENCH_fuzz.json".to_string(),
        corpus_out: None,
        replay: None,
        inject_scale: None,
        emit_corpus: None,
        stop_after: 1,
        heartbeat_secs: 5,
    };
    let mut args = std::env::args().skip(1);
    let value = |args: &mut dyn Iterator<Item = String>, flag: &str| {
        args.next().ok_or(format!("{flag} needs a value"))
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--points" => opts.points = Some(num(&value(&mut args, "--points")?)?),
            "--seconds" => opts.seconds = Some(num(&value(&mut args, "--seconds")?)?),
            "--seed" => opts.seed = num(&value(&mut args, "--seed")?)?,
            "--threads" => opts.threads = num(&value(&mut args, "--threads")?)?.max(1) as usize,
            "--json-out" => opts.json_out = value(&mut args, "--json-out")?,
            "--corpus-out" => opts.corpus_out = Some(value(&mut args, "--corpus-out")?.into()),
            "--replay" => opts.replay = Some(value(&mut args, "--replay")?.into()),
            "--stop-after" => {
                opts.stop_after = num(&value(&mut args, "--stop-after")?)?.max(1) as usize
            }
            "--inject-scale" => {
                let raw = value(&mut args, "--inject-scale")?;
                let (num_s, den_s) = raw.split_once('/').ok_or("--inject-scale expects NUM/DEN")?;
                opts.inject_scale = Some((num(num_s)?, num(den_s)?.max(1)));
            }
            "--emit-corpus" => opts.emit_corpus = Some(num(&value(&mut args, "--emit-corpus")?)?),
            "--heartbeat" => opts.heartbeat_secs = num(&value(&mut args, "--heartbeat")?)?,
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(opts)
}

fn num(text: &str) -> Result<u64, String> {
    text.trim().parse::<u64>().map_err(|_| format!("`{text}` is not a non-negative integer"))
}

fn replay(dir: &Path, json_out: &str) -> Result<ExitCode, String> {
    let report = replay_corpus(dir)?;
    println!(
        "fuzzfarm replay: {} spec(s), {} crpd records, {} wcrt tasks, {} kernel pairs",
        report.files.len(),
        report.counts.crpd_records,
        report.counts.wcrt_tasks,
        report.counts.kernel_pairs
    );
    for (path, violation) in &report.failures {
        eprintln!("FAIL {}: [{}] {}", path.display(), violation.kind.label(), violation.detail);
    }
    let json = rtserver::json::Json::obj([
        ("mode", rtserver::json::Json::from("replay")),
        ("files", rtserver::json::Json::from(report.files.len() as u64)),
        ("failures", rtserver::json::Json::from(report.failures.len() as u64)),
    ]);
    std::fs::write(json_out, json.encode() + "\n").map_err(|e| format!("{json_out}: {e}"))?;
    Ok(if report.failures.is_empty() { ExitCode::SUCCESS } else { ExitCode::from(1) })
}

fn emit_corpus(count: u64, seed: u64, dir: &Path) -> Result<ExitCode, String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    for k in 0..count {
        let spec = rtfuzz::generate(seed + k);
        let outcome = rtfuzz::check(&spec, None);
        let verdict = match &outcome.violation {
            None => "ok".to_string(),
            Some(v) => format!("VIOLATION {}", v.kind.label()),
        };
        let path = dir.join(format!("seed-{:08}.spec", seed + k));
        std::fs::write(&path, spec.render()).map_err(|e| format!("{}: {e}", path.display()))?;
        println!("wrote {} ({verdict})", path.display());
    }
    Ok(ExitCode::SUCCESS)
}

fn run(opts: &Options) -> Result<ExitCode, String> {
    if let Some(dir) = &opts.replay {
        return replay(dir, &opts.json_out);
    }
    if let Some(count) = opts.emit_corpus {
        let dir = opts.corpus_out.as_deref().ok_or("--emit-corpus needs --corpus-out DIR")?;
        return emit_corpus(count, opts.seed, dir);
    }
    rtpar::configure_global(opts.threads);
    let campaign = CampaignOptions {
        base_seed: opts.seed,
        // With only a time budget, run until the clock stops the farm.
        max_points: opts.points.unwrap_or(if opts.seconds.is_some() {
            u64::MAX / 2
        } else {
            1_000
        }),
        time_limit: opts.seconds.map(Duration::from_secs),
        injection: opts.inject_scale.map(|(num, den)| Injection::ScaleCrpd { num, den }),
        stop_after: opts.stop_after,
        heartbeat: (opts.heartbeat_secs > 0).then(|| Duration::from_secs(opts.heartbeat_secs)),
        ..CampaignOptions::default()
    };
    let report = run_campaign(&campaign);
    println!(
        "fuzzfarm: {} points in {:.2}s ({:.0} points/s), {} violation(s); \
         oracle checks: {} crpd records, {} wcrt tasks, {} kernel pairs, {} preemptions",
        report.points,
        report.elapsed.as_secs_f64(),
        report.points_per_sec(),
        report.violations.len(),
        report.counts.crpd_records,
        report.counts.wcrt_tasks,
        report.counts.kernel_pairs,
        report.counts.preemptions
    );
    for v in &report.violations {
        eprintln!(
            "VIOLATION seed {}: [{}] {} (shrunk {} -> {} tasks in {} steps)",
            v.seed,
            v.violation.kind.label(),
            v.violation.detail,
            v.original.tasks.len(),
            v.shrunk.tasks.len(),
            v.shrink_steps
        );
        if let Some(dir) = &opts.corpus_out {
            std::fs::create_dir_all(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
            let path = dir.join(format!("seed-{:08}-{}.spec", v.seed, v.violation.kind.label()));
            let body = format!("# {}\n{}", v.violation.detail, v.shrunk.render());
            std::fs::write(&path, body).map_err(|e| format!("{}: {e}", path.display()))?;
            eprintln!("reproducer written to {}", path.display());
        }
    }
    std::fs::write(&opts.json_out, report.to_json().encode() + "\n")
        .map_err(|e| format!("{}: {e}", opts.json_out))?;
    Ok(if report.violations.is_empty() { ExitCode::SUCCESS } else { ExitCode::from(1) })
}

fn main() -> ExitCode {
    let opts = match parse_options() {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("fuzzfarm: {e}");
            eprintln!(
                "usage: fuzzfarm [--points N] [--seconds S] [--seed BASE] [--threads N] \
                 [--json-out PATH] [--corpus-out DIR] [--stop-after N] \
                 [--inject-scale NUM/DEN] [--replay DIR] [--emit-corpus N] \
                 [--heartbeat SECS (0 = off)]"
            );
            return ExitCode::from(2);
        }
    };
    match run(&opts) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("fuzzfarm: {e}");
            ExitCode::from(2)
        }
    }
}
