//! The campaign engine: seeded batches of points fanned out over the
//! current [`rtpar`] pool, index-ordered aggregation (so a campaign's
//! counts and violation list depend only on its seed range, never the
//! thread count), shrinking of every violation, and the corpus replay
//! path the regression suite runs on every `cargo test`.

use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use rtserver::json::Json;

use crate::oracle::{check, CheckOutcome, Injection, OracleCounts, Violation};
use crate::reduce::shrink_spec;
use crate::spec::{generate, FuzzSpec};

/// Campaign configuration.
#[derive(Debug, Clone)]
pub struct CampaignOptions {
    /// First point seed; the campaign runs seeds `base_seed..`.
    pub base_seed: u64,
    /// Maximum points to evaluate.
    pub max_points: u64,
    /// Optional wall-clock budget, checked between batches.
    pub time_limit: Option<Duration>,
    /// Known-unsound mutation to inject (self-test mode).
    pub injection: Option<Injection>,
    /// Stop after this many violations have been found and shrunk.
    pub stop_after: usize,
    /// Shrink-step budget per violation.
    pub shrink_steps: usize,
    /// Points per parallel batch.
    pub batch: usize,
    /// Emit a progress heartbeat line on stderr at this interval.
    pub heartbeat: Option<Duration>,
}

impl Default for CampaignOptions {
    fn default() -> Self {
        CampaignOptions {
            base_seed: 0,
            max_points: 1_000,
            time_limit: None,
            injection: None,
            stop_after: 1,
            shrink_steps: 200,
            batch: 64,
            heartbeat: None,
        }
    }
}

/// A violation with its shrunk reproducer.
#[derive(Debug, Clone)]
pub struct ShrunkViolation {
    /// The generator seed of the failing point.
    pub seed: u64,
    /// The failure as observed on the original point.
    pub violation: Violation,
    /// The original generated spec.
    pub original: FuzzSpec,
    /// The minimized reproducer (still failing some oracle).
    pub shrunk: FuzzSpec,
    /// Accepted shrink steps between the two.
    pub shrink_steps: usize,
}

/// The campaign result.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// First seed evaluated.
    pub base_seed: u64,
    /// Points evaluated.
    pub points: u64,
    /// Wall-clock time spent.
    pub elapsed: Duration,
    /// Aggregated oracle statistics, in seed order.
    pub counts: OracleCounts,
    /// Violations found, in seed order, each shrunk.
    pub violations: Vec<ShrunkViolation>,
}

impl CampaignReport {
    /// Points per second of wall-clock time.
    pub fn points_per_sec(&self) -> f64 {
        self.points as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    /// The report as JSON (the `BENCH_fuzz.json` schema).
    pub fn to_json(&self) -> Json {
        let violations: Vec<Json> = self
            .violations
            .iter()
            .map(|v| {
                Json::obj([
                    ("seed", Json::from(v.seed)),
                    ("kind", Json::from(v.violation.kind.label())),
                    ("detail", Json::from(v.violation.detail.as_str())),
                    ("shrink_steps", Json::from(v.shrink_steps as u64)),
                    ("tasks_before", Json::from(v.original.tasks.len() as u64)),
                    ("tasks_after", Json::from(v.shrunk.tasks.len() as u64)),
                    ("reproducer", Json::from(v.shrunk.render().as_str())),
                ])
            })
            .collect();
        Json::obj([
            ("base_seed", Json::from(self.base_seed)),
            ("points", Json::from(self.points)),
            ("elapsed_secs", Json::Num(self.elapsed.as_secs_f64())),
            ("points_per_sec", Json::Num(self.points_per_sec())),
            ("violations_found", Json::from(self.violations.len() as u64)),
            (
                "oracles",
                Json::obj([
                    ("crpd_records", Json::from(self.counts.crpd_records)),
                    ("wcrt_tasks", Json::from(self.counts.wcrt_tasks)),
                    ("kernel_pairs", Json::from(self.counts.kernel_pairs)),
                    ("preemptions", Json::from(self.counts.preemptions)),
                ]),
            ),
            ("violations", Json::Arr(violations)),
        ])
    }
}

/// Runs a campaign: generates `base_seed + k` for consecutive `k`,
/// checks each point in parallel batches on the ambient pool, and
/// shrinks every violation (serially, outside the pool fan-out, so
/// shrinking is deterministic too).
pub fn run_campaign(opts: &CampaignOptions) -> CampaignReport {
    let started = Instant::now();
    let mut counts = OracleCounts::default();
    let mut violations: Vec<ShrunkViolation> = Vec::new();
    let mut points = 0u64;
    let stop_after = opts.stop_after.max(1);
    let mut heartbeat = opts.heartbeat.map(rtobs::flight::Heartbeat::new);
    // An effectively unbounded campaign (time-budget mode) has no useful
    // total, so the heartbeat reports rate/elapsed instead of an ETA.
    let total = (opts.max_points < u64::MAX / 4).then_some(opts.max_points);
    while points < opts.max_points && violations.len() < stop_after {
        if opts.time_limit.is_some_and(|limit| started.elapsed() >= limit) {
            break;
        }
        let n = opts.batch.max(1).min((opts.max_points - points) as usize);
        let first = opts.base_seed + points;
        let outcomes: Vec<(u64, FuzzSpec, CheckOutcome)> = rtpar::par_map_range(n, |k| {
            let seed = first + k as u64;
            let spec = generate(seed);
            let outcome = check(&spec, opts.injection.as_ref());
            (seed, spec, outcome)
        });
        for (seed, spec, outcome) in outcomes {
            counts.add(&outcome.counts);
            if let Some(violation) = outcome.violation {
                if violations.len() < stop_after {
                    let (shrunk, shrink_steps) =
                        shrink_spec(&spec, opts.injection.as_ref(), opts.shrink_steps);
                    violations.push(ShrunkViolation {
                        seed,
                        violation,
                        original: spec,
                        shrunk,
                        shrink_steps,
                    });
                }
            }
        }
        points += n as u64;
        if let Some(hb) = heartbeat.as_mut() {
            if let Some(line) = hb.poll(points, total) {
                eprintln!("fuzzfarm: {line}");
            }
        }
    }
    CampaignReport {
        base_seed: opts.base_seed,
        points,
        elapsed: started.elapsed(),
        counts,
        violations,
    }
}

/// The outcome of replaying a corpus directory.
#[derive(Debug, Clone)]
pub struct ReplayReport {
    /// The `.spec` files replayed, in name order.
    pub files: Vec<PathBuf>,
    /// Aggregated oracle statistics.
    pub counts: OracleCounts,
    /// Files that failed, with the oracle evidence.
    pub failures: Vec<(PathBuf, Violation)>,
}

/// Replays every `.spec` file in `dir` (sorted by name) through the full
/// oracle check.
///
/// # Errors
///
/// Returns a message if the directory cannot be read or a file fails to
/// parse — a corrupt corpus is a test failure, not a skip.
pub fn replay_corpus(dir: &Path) -> Result<ReplayReport, String> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("{}: {e}", dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "spec"))
        .collect();
    files.sort();
    let mut report = ReplayReport {
        files: files.clone(),
        counts: OracleCounts::default(),
        failures: Vec::new(),
    };
    for path in files {
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        let spec = FuzzSpec::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        let outcome = check(&spec, None);
        report.counts.add(&outcome.counts);
        if let Some(violation) = outcome.violation {
            report.failures.push((path, violation));
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_campaign_is_clean_and_deterministic() {
        let opts = CampaignOptions { max_points: 8, batch: 4, ..CampaignOptions::default() };
        let report = rtpar::Pool::new(2).install(|| run_campaign(&opts));
        assert_eq!(report.points, 8);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        assert!(report.counts.kernel_pairs > 0);
        let again = rtpar::Pool::new(1).install(|| run_campaign(&opts));
        assert_eq!(again.counts, report.counts);
        let json = report.to_json().encode();
        assert!(json.contains("\"points\":8"), "{json}");
    }

    #[test]
    fn time_limit_stops_the_campaign() {
        let opts = CampaignOptions {
            max_points: u64::MAX / 2,
            batch: 2,
            time_limit: Some(Duration::from_millis(1)),
            ..CampaignOptions::default()
        };
        let report = run_campaign(&opts);
        assert!(report.points < 1_000_000);
    }

    #[test]
    fn replay_reports_missing_dir_and_bad_files() {
        let err = replay_corpus(Path::new("/nonexistent/corpus")).unwrap_err();
        assert!(err.contains("corpus"), "{err}");
        let dir = std::env::temp_dir().join(format!("rtfuzz-corpus-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("bad.spec"), "not a spec\n").unwrap();
        let err = replay_corpus(&dir).unwrap_err();
        assert!(err.contains("bad.spec"), "{err}");
        std::fs::write(dir.join("bad.spec"), crate::spec::generate(3).render()).unwrap();
        let report = replay_corpus(&dir).unwrap();
        assert_eq!(report.files.len(), 1);
        assert!(report.failures.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }
}
