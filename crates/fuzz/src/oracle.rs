//! The three per-point oracles, checked against the scheduler
//! co-simulation ground truth:
//!
//! 1. **CRPD dominance**: no simulated preemption reloads more lines
//!    than the analyzed matrix admits for the victim. Nested preemptions
//!    attribute every eviction in the victim's out-of-CPU window to the
//!    direct preemptor's record, so the sound per-record bound is the sum
//!    of the victim's matrix row over all higher-priority tasks (which
//!    collapses to the exact pairwise cell for two-task systems).
//! 2. **WCRT dominance**: no simulated response time exceeds a converged
//!    Eq. 7 fixpoint computed from the *sound reference* preemption cost
//!    ([`sound_preemption_lines`]), plus the release-blocking slack
//!    (`cpi + 2·Cmiss + 2·Ccs`) the paper does not model: a release can
//!    land during one in-flight instruction or during the resume-time
//!    double context-switch charge. On the subdomain where the paper's
//!    per-pair bound is tight — two tasks on a direct-mapped cache — the
//!    *shipped* Eq. 7 fixpoint is checked directly.
//!
//!    The reference cost exists because the farm found (and the corpus
//!    pins) two gaps between the paper's model and LRU reality:
//!
//!    - **LRU aging** (Burguière/Cullmann/Reineke, WCET 2009 — five
//!      years after the paper): on a set-associative LRU cache a
//!      preemptor that loads even one line into a set *ages* every
//!      victim line there, so the victim's own later accesses can evict
//!      lines the preemption never displaced. The per-set damage is
//!      bounded by *all* of the victim's useful lines in any set the
//!      preemptor touches, not by `min(|m̂a,r|, |m̂b,r|, L)` (Eq. 2).
//!    - **Intermediate victims**: Eq. 7 charges each release of `Tj`
//!      inside `Ti`'s busy window with `Cpre(Ti, Tj)`, but the job that
//!      release actually preempts may be any task of priority between
//!      the two, and reloading *its* lines lengthens `Ti`'s busy window
//!      just the same.
//! 3. **Kernel equivalence**: the packed Eq. 2/3 min-sum kernel computes
//!    bit-identical bounds to the exact tree walk / backward sweep, for
//!    both the union-footprint overlap and the per-path useful-block
//!    maxima.

use crpd::{analyze_all, AnalyzedTask, CrpdMatrix, TaskParams, WcrtParams};
use rtcache::{CacheGeometry, Ciip, PackedFootprint};
use rtprogram::Program;
use rtsched::{simulate, CacheMode, SchedConfig, SchedTask, VariantPolicy};
use rtwcet::TimingModel;
use rtworkloads::synthetic::{synthetic_task, SyntheticSpec};

use crate::spec::FuzzSpec;

/// Simulation horizon cap, bounding the cost of one point.
const HORIZON_CAP: u64 = 3_000_000;

/// Which oracle a point failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViolationKind {
    /// A simulated preemption reloaded more lines than analyzed (oracle 1).
    CrpdUnderestimate,
    /// A simulated response time exceeded a converged WCRT (oracle 2).
    WcrtUnderestimate,
    /// Packed kernel output diverged from the exact tree walk (oracle 3).
    KernelMismatch,
    /// The pipeline itself failed (geometry, analysis or simulation
    /// error) — a generator bug, but still a reproducer worth shrinking.
    Pipeline,
}

impl ViolationKind {
    /// Stable lowercase label for reports and corpus file names.
    pub fn label(self) -> &'static str {
        match self {
            ViolationKind::CrpdUnderestimate => "crpd-underestimate",
            ViolationKind::WcrtUnderestimate => "wcrt-underestimate",
            ViolationKind::KernelMismatch => "kernel-mismatch",
            ViolationKind::Pipeline => "pipeline-error",
        }
    }
}

/// One oracle failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Which oracle fired.
    pub kind: ViolationKind,
    /// Human-readable evidence (measured vs analyzed numbers).
    pub detail: String,
}

/// What a clean check exercised, for campaign statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OracleCounts {
    /// Preemption records checked against the CRPD bound.
    pub crpd_records: u64,
    /// Converged WCRT results checked against measured responses.
    pub wcrt_tasks: u64,
    /// Ordered task pairs whose packed kernels were replayed exactly.
    pub kernel_pairs: u64,
    /// Total simulated preemptions across all points.
    pub preemptions: u64,
}

impl OracleCounts {
    /// Accumulates another point's counts.
    pub fn add(&mut self, other: &OracleCounts) {
        self.crpd_records += other.crpd_records;
        self.wcrt_tasks += other.wcrt_tasks;
        self.kernel_pairs += other.kernel_pairs;
        self.preemptions += other.preemptions;
    }
}

/// The outcome of checking one point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckOutcome {
    /// What the oracles exercised before the first failure (if any).
    pub counts: OracleCounts,
    /// The first oracle failure, if the point is unsound.
    pub violation: Option<Violation>,
}

/// A known-unsound mutation injected into the pipeline, for self-testing
/// that the farm actually catches and shrinks bugs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Injection {
    /// Scales every CRPD matrix cell by `num/den` (rounding down) before
    /// the WCRT fixpoint — unsound whenever `num < den`.
    ScaleCrpd {
        /// Numerator.
        num: u64,
        /// Denominator.
        den: u64,
    },
}

impl Injection {
    /// Applies the mutation to a computed matrix.
    pub fn apply(&self, matrix: &mut CrpdMatrix) {
        match *self {
            Injection::ScaleCrpd { num, den } => {
                for row in &mut matrix.lines {
                    for cell in row.iter_mut() {
                        *cell = (*cell as u64 * num / den.max(1)) as usize;
                    }
                }
            }
        }
    }
}

/// A spec built into concrete artifacts: programs, WCET-derived periods
/// and analyzed tasks (priorities = task index + 1).
pub struct BuiltSystem {
    /// The point's cache geometry.
    pub geometry: CacheGeometry,
    /// The point's timing model.
    pub model: TimingModel,
    /// The generated programs, highest priority first.
    pub programs: Vec<Program>,
    /// WCET-derived periods, per task.
    pub periods: Vec<u64>,
    /// The analyzed tasks.
    pub analyzed: Vec<AnalyzedTask>,
}

/// Builds a spec's system: synthesizes each task's program, probes its
/// solo WCET to size the period (`wcet × period_mul`) and runs the full
/// analysis.
///
/// # Errors
///
/// Returns a message if the geometry is invalid or a program fails to
/// analyze — [`check`] converts this into a
/// [`ViolationKind::Pipeline`].
pub fn build(spec: &FuzzSpec) -> Result<BuiltSystem, String> {
    let geometry = CacheGeometry::new(spec.sets, spec.ways, spec.line)
        .map_err(|e| format!("geometry: {e}"))?;
    let model = TimingModel::default();
    let mut programs = Vec::with_capacity(spec.tasks.len());
    let mut periods = Vec::with_capacity(spec.tasks.len());
    let mut analyzed = Vec::with_capacity(spec.tasks.len());
    for (i, t) in spec.tasks.iter().enumerate() {
        let program = synthetic_task(&SyntheticSpec {
            name: format!("fz{i}"),
            code_base: 0x0001_0000 + 0x0800 * i as u64,
            data_base: 0x0010_0000 + 0x0140 * i as u64 + 16 * u64::from(t.data_nudge),
            data_words: t.data_words as usize,
            outer_iters: t.outer_iters,
            inner_iters: t.inner_iters,
            stride_words: t.stride_words as usize,
            two_paths: t.two_paths,
            padding_instrs: 16,
            seed: t.seed,
        });
        let wcet = rtwcet::estimate_wcet(&program, geometry, model)
            .map_err(|e| format!("wcet fz{i}: {e}"))?
            .cycles;
        let period = wcet.max(1) * u64::from(t.period_mul);
        let task = AnalyzedTask::analyze(
            &program,
            TaskParams { period, priority: i as u32 + 1 },
            geometry,
            model,
        )
        .map_err(|e| format!("analyze fz{i}: {e}"))?;
        programs.push(program);
        periods.push(period);
        analyzed.push(task);
    }
    Ok(BuiltSystem { geometry, model, programs, periods, analyzed })
}

/// Sound per-preemption reload bound for LRU (in lines): every useful
/// block of `victim` in any cache set `preemptor` may touch. Once a
/// block is reloaded after the preemption it is most-recently-used in
/// both the preempted and the isolated run, and the two runs see the
/// same distinct accesses from there on — so each useful block pays at
/// most one extra miss per preemption, but (unlike Eq. 2's
/// `min(|m̂a,r|, |m̂b,r|, L)`) *all* useful blocks in a touched set may
/// pay it, even ones the preemptor never displaced.
pub fn sound_preemption_lines(victim_useful: &Ciip, preemptor_footprint: &Ciip) -> usize {
    victim_useful
        .iter()
        .filter(|(set, _)| preemptor_footprint.subset_len(*set) > 0)
        .map(|(_, blocks)| blocks.len())
        .sum()
}

thread_local! {
    /// One 8-way analysis pool per checking thread, reused across points
    /// so the `threads = 8` dimension does not pay a pool spawn per point.
    static POOL8: rtpar::Pool = rtpar::Pool::new(8);
}

/// Runs `f` under the pool size a point requests: `Pool::new(1)` costs
/// nothing (no threads spawned), and 8-way points share one pool per
/// checking thread.
pub fn with_point_pool<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    if threads <= 1 {
        rtpar::Pool::new(1).install(f)
    } else {
        POOL8.with(|pool| pool.install(f))
    }
}

/// Checks one point against all three oracles, under the point's pool
/// size. Returns the first violation (with the oracle counts gathered up
/// to that moment) or the clean counts.
pub fn check(spec: &FuzzSpec, injection: Option<&Injection>) -> CheckOutcome {
    with_point_pool(spec.threads, || check_inner(spec, injection))
}

fn fail(counts: OracleCounts, kind: ViolationKind, detail: String) -> CheckOutcome {
    CheckOutcome { counts, violation: Some(Violation { kind, detail }) }
}

fn check_inner(spec: &FuzzSpec, injection: Option<&Injection>) -> CheckOutcome {
    let mut counts = OracleCounts::default();
    let built = match build(spec) {
        Ok(b) => b,
        Err(e) => return fail(counts, ViolationKind::Pipeline, e),
    };
    let mut matrix = CrpdMatrix::compute(spec.approach(), &built.analyzed);
    if let Some(injection) = injection {
        injection.apply(&mut matrix);
    }
    let params = WcrtParams {
        miss_penalty: built.model.miss_penalty,
        ctx_switch: spec.ctx_switch,
        max_iterations: 10_000,
    };
    let results = analyze_all(&built.analyzed, &matrix, &params);
    let config = SchedConfig {
        geometry: built.geometry,
        model: built.model,
        ctx_switch: spec.ctx_switch,
        horizon: built
            .periods
            .iter()
            .copied()
            .max()
            .unwrap_or(1)
            .saturating_mul(3)
            .min(HORIZON_CAP),
        variant_policy: VariantPolicy::Worst,
        cache_mode: CacheMode::Shared,
        replacement: Default::default(),
        l2: None,
    };
    let sched: Vec<SchedTask> = built
        .programs
        .iter()
        .zip(&built.periods)
        .enumerate()
        .map(|(i, (p, period))| SchedTask::new(p.clone(), *period, i as u32 + 1))
        .collect();
    let report = match simulate(&sched, &config) {
        Ok(r) => r,
        Err(e) => return fail(counts, ViolationKind::Pipeline, format!("simulate: {e}")),
    };

    // Oracle 1: analyzed CRPD dominates every simulated reload record.
    for p in &report.preemptions {
        let bound: usize = (0..p.preempted).map(|j| matrix.reload(p.preempted, j)).sum();
        counts.crpd_records += 1;
        if p.reloaded_lines > bound {
            return fail(
                counts,
                ViolationKind::CrpdUnderestimate,
                format!(
                    "task {} preempted by {}: {} lines reloaded > {} analyzed ({})",
                    p.preempted,
                    p.preempting,
                    p.reloaded_lines,
                    bound,
                    spec.approach()
                ),
            );
        }
    }
    counts.preemptions += report.tasks.iter().map(|t| t.preemptions).sum::<u64>();

    // Oracle 2: converged WCRTs dominate every measured response time.
    // The reference fixpoint charges each release of `Tj` with the worst
    // sound LRU damage it can do to *any* possible victim in the busy
    // window, never less than the (possibly injected) shipped cell; the
    // shipped fixpoint itself is checked where the paper's model is
    // tight (two tasks, direct-mapped). The release-blocking slack
    // covers what Eq. 7 (like the paper) does not model: a release
    // takes effect at an instruction boundary, so a releasing task can
    // wait out one in-flight instruction (`cpi + 2·Cmiss`) — and,
    // because the simulator charges both switches of a preemption to
    // the global clock when the preempted job *resumes*, a release
    // landing inside that charge also waits out the `2·Ccs`.
    let slack = built.model.cpi + 2 * built.model.miss_penalty + 2 * spec.ctx_switch;
    let n = built.analyzed.len();
    let wcets: Vec<u64> = built.analyzed.iter().map(|t| t.wcet()).collect();
    let priorities: Vec<u32> = (0..n).map(|i| i as u32 + 1).collect();
    let useful: Vec<Ciip> = built.analyzed.iter().map(|t| t.mumbs()).collect();
    let sound_lines: Vec<Vec<usize>> = (0..n)
        .map(|k| {
            (0..n)
                .map(|j| {
                    if j < k {
                        sound_preemption_lines(&useful[k], built.analyzed[j].all_blocks())
                            .max(matrix.reload(k, j))
                    } else {
                        0
                    }
                })
                .collect()
        })
        .collect();
    let cpre = |i: usize, j: usize| -> u64 {
        let lines = (j + 1..=i).map(|k| sound_lines[k][j]).max().unwrap_or(0);
        lines as u64 * params.miss_penalty + 2 * params.ctx_switch
    };
    let paper_is_tight = n == 2 && spec.ways == 1;
    for (i, r) in results.iter().enumerate() {
        let reference = crpd::response_time_generic(
            &wcets,
            &built.periods,
            &priorities,
            &cpre,
            i,
            params.max_iterations,
        );
        if !reference.schedulable {
            continue;
        }
        counts.wcrt_tasks += 1;
        if report.tasks[i].max_response > reference.cycles + slack {
            return fail(
                counts,
                ViolationKind::WcrtUnderestimate,
                format!(
                    "task {i}: measured response {} > sound reference WCRT {} (+slack {slack}, \
                     {} WCRT {})",
                    report.tasks[i].max_response,
                    reference.cycles,
                    spec.approach(),
                    r.cycles
                ),
            );
        }
        if paper_is_tight && r.schedulable && report.tasks[i].max_response > r.cycles + slack {
            return fail(
                counts,
                ViolationKind::WcrtUnderestimate,
                format!(
                    "task {i}: measured response {} > {} WCRT {} (+slack {slack}) on the \
                     tight subdomain (2 tasks, direct-mapped)",
                    report.tasks[i].max_response,
                    spec.approach(),
                    r.cycles
                ),
            );
        }
    }

    // Oracle 3: the packed min-sum kernel equals the exact tree walk,
    // for the union-footprint overlap (Eq. 2) and every per-path
    // useful-block maximum (Eq. 3/4).
    for i in 0..built.analyzed.len() {
        for j in 0..built.analyzed.len() {
            if i == j {
                continue;
            }
            counts.kernel_pairs += 1;
            let (a, b) = (&built.analyzed[i], &built.analyzed[j]);
            let tree = a.all_blocks().overlap_bound(b.all_blocks());
            match (a.all_blocks_packed(), b.all_blocks_packed()) {
                (Some(pa), Some(pb)) => {
                    let packed = pa.overlap_bound(pb);
                    if packed != tree {
                        return fail(
                            counts,
                            ViolationKind::KernelMismatch,
                            format!("union overlap {i}<-{j}: packed {packed} != tree {tree}"),
                        );
                    }
                }
                _ => {
                    return fail(
                        counts,
                        ViolationKind::KernelMismatch,
                        format!("pair {i}<-{j}: packed footprint missing at {} ways", spec.ways),
                    )
                }
            }
            let mb = b.mumbs();
            if let Some(pmb) = PackedFootprint::from_ciip(&mb) {
                for path in a.paths() {
                    let tree = path.trace.max_overlap_bound(&mb).0;
                    let packed = path.trace.max_packed_overlap(&pmb);
                    if packed != tree {
                        return fail(
                            counts,
                            ViolationKind::KernelMismatch,
                            format!(
                                "useful overlap {i}<-{j} path `{}`: packed {packed} != tree {tree}",
                                path.name
                            ),
                        );
                    }
                }
            }
        }
    }

    CheckOutcome { counts, violation: None }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::generate;

    #[test]
    fn clean_points_pass_all_oracles() {
        for seed in [0u64, 1, 2, 3] {
            let spec = generate(seed);
            let outcome = check(&spec, None);
            assert_eq!(outcome.violation, None, "seed {seed}: {:?}", outcome.violation);
            assert!(outcome.counts.kernel_pairs > 0);
            assert!(outcome.counts.wcrt_tasks > 0 || outcome.counts.preemptions > 0);
        }
    }

    #[test]
    fn checks_are_deterministic() {
        let spec = generate(11);
        let first = check(&spec, None);
        assert_eq!(check(&spec, None), first);
    }

    #[test]
    fn zeroed_crpd_injection_trips_an_oracle() {
        // Scaling the matrix to zero is maximally unsound: some seed in a
        // small deterministic range must trip oracle 1 or 2.
        let injection = Injection::ScaleCrpd { num: 0, den: 1 };
        let tripped = (0..32u64).any(|seed| {
            let outcome = check(&generate(seed), Some(&injection));
            outcome.violation.as_ref().is_some_and(|v| {
                matches!(
                    v.kind,
                    ViolationKind::CrpdUnderestimate | ViolationKind::WcrtUnderestimate
                )
            })
        });
        assert!(tripped, "zeroed CRPD matrix survived 32 points");
    }
}
