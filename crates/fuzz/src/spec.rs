//! The fuzz point model: a [`FuzzSpec`] describes one complete synthetic
//! multi-task system plus the analysis dimensions it is checked under,
//! and round-trips through a deterministic text format so shrunk
//! reproducers can live in a committed corpus.

use crpd::CrpdApproach;

/// One task of a fuzz point, in the units of
/// [`rtworkloads::synthetic::SyntheticSpec`]. Code and data base
/// addresses are derived from the task index (the same per-index stagger
/// the soundness suite uses), with `data_nudge` shifting the data base by
/// whole cache lines so footprints collide at varied set indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskSpec {
    /// Buffer size in words.
    pub data_words: u32,
    /// Outer loop iterations.
    pub outer_iters: u32,
    /// Inner loop iterations.
    pub inner_iters: u32,
    /// Scan stride in words.
    pub stride_words: u32,
    /// Extra data-base offset in 16-byte cache lines.
    pub data_nudge: u32,
    /// Period as a multiple of the task's solo WCET at the point's
    /// geometry.
    pub period_mul: u32,
    /// Whether the task has an input-selected two-path scan.
    pub two_paths: bool,
    /// Buffer-content seed.
    pub seed: u64,
}

/// One complete fuzz point: a task system plus the cache geometry, CRPD
/// approach and pool size it is analyzed under. Task index = priority
/// (task 0 is the highest-priority preemptor).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuzzSpec {
    /// The generator seed that produced this point (0 for hand-written
    /// corpus entries).
    pub seed: u64,
    /// Cache sets (power of two, 4–64).
    pub sets: u32,
    /// Cache ways (1–8).
    pub ways: u32,
    /// Line size in bytes (always 16).
    pub line: u32,
    /// Paper approach number, 1–4.
    pub approach: u32,
    /// Context-switch cost in cycles (both simulated and analyzed).
    pub ctx_switch: u64,
    /// Analysis pool size for this point (1 or 8).
    pub threads: usize,
    /// The tasks, highest priority first.
    pub tasks: Vec<TaskSpec>,
}

impl FuzzSpec {
    /// The [`CrpdApproach`] for the spec's paper approach number.
    pub fn approach(&self) -> CrpdApproach {
        CrpdApproach::ALL[(self.approach as usize - 1).min(3)]
    }

    /// Clamps every field into the range the generator and the program
    /// builder support, so any mutation (random or shrinking) yields a
    /// buildable system. Idempotent.
    pub fn sanitize(&mut self) {
        self.line = 16;
        self.sets = self.sets.next_power_of_two().clamp(4, 64);
        self.ways = self.ways.clamp(1, 8);
        self.approach = self.approach.clamp(1, 4);
        self.ctx_switch = self.ctx_switch.min(1_000);
        self.threads = if self.threads > 1 { 8 } else { 1 };
        for t in &mut self.tasks {
            t.stride_words = t.stride_words.clamp(1, 4);
            t.period_mul = t.period_mul.clamp(2, 64);
            t.outer_iters = t.outer_iters.clamp(1, 8);
            t.data_nudge %= 64;
            // The buffer must hold at least one stride per scan arm.
            let arms = if t.two_paths { 2 } else { 1 };
            t.data_words = t.data_words.clamp((t.stride_words * arms).max(2), 4096);
            // The scan must stay inside its arm's span.
            let span = t.data_words / arms;
            t.inner_iters = t.inner_iters.clamp(1, 64).min((span / t.stride_words).max(1));
        }
    }

    /// Renders the spec in the corpus text format. [`FuzzSpec::parse`]
    /// inverts this exactly.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("rtfuzz v1\n");
        out.push_str(&format!("seed {}\n", self.seed));
        out.push_str(&format!("cache {} {} {}\n", self.sets, self.ways, self.line));
        out.push_str(&format!("approach {}\n", self.approach));
        out.push_str(&format!("ccs {}\n", self.ctx_switch));
        out.push_str(&format!("threads {}\n", self.threads));
        for t in &self.tasks {
            out.push_str(&format!(
                "task dw={} outer={} inner={} stride={} nudge={} pmul={} paths={} seed={}\n",
                t.data_words,
                t.outer_iters,
                t.inner_iters,
                t.stride_words,
                t.data_nudge,
                t.period_mul,
                if t.two_paths { 2 } else { 1 },
                t.seed,
            ));
        }
        out
    }

    /// Parses the corpus text format (`#` comments and blank lines are
    /// ignored). The parsed spec is [`sanitize`](FuzzSpec::sanitize)d, so
    /// a hand-edited corpus file cannot crash the builder.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending line for version/field
    /// mismatches, malformed numbers or a system of fewer than two tasks.
    pub fn parse(text: &str) -> Result<FuzzSpec, String> {
        let mut lines =
            text.lines().map(str::trim).filter(|l| !l.is_empty() && !l.starts_with('#'));
        match lines.next() {
            Some("rtfuzz v1") => {}
            other => return Err(format!("expected `rtfuzz v1` header, got {other:?}")),
        }
        let mut spec = FuzzSpec {
            seed: 0,
            sets: 64,
            ways: 2,
            line: 16,
            approach: 4,
            ctx_switch: 0,
            threads: 1,
            tasks: Vec::new(),
        };
        for line in lines {
            let (key, rest) = line.split_once(' ').ok_or_else(|| format!("bare key `{line}`"))?;
            match key {
                "seed" => spec.seed = num(rest)?,
                "cache" => {
                    let parts = fields(rest, 3).map_err(|e| format!("cache: {e}"))?;
                    spec.sets = num(parts[0])? as u32;
                    spec.ways = num(parts[1])? as u32;
                    spec.line = num(parts[2])? as u32;
                }
                "approach" => spec.approach = num(rest)? as u32,
                "ccs" => spec.ctx_switch = num(rest)?,
                "threads" => spec.threads = num(rest)? as usize,
                "task" => spec.tasks.push(parse_task(rest)?),
                other => return Err(format!("unknown directive `{other}`")),
            }
        }
        if spec.tasks.len() < 2 {
            return Err(format!(
                "a fuzz system needs at least two tasks, got {}",
                spec.tasks.len()
            ));
        }
        spec.sanitize();
        Ok(spec)
    }
}

fn num(text: &str) -> Result<u64, String> {
    text.trim().parse::<u64>().map_err(|_| format!("`{text}` is not a non-negative integer"))
}

fn fields(rest: &str, n: usize) -> Result<Vec<&str>, String> {
    let parts: Vec<&str> = rest.split_whitespace().collect();
    if parts.len() == n {
        Ok(parts)
    } else {
        Err(format!("expected {n} fields, got {}", parts.len()))
    }
}

fn parse_task(rest: &str) -> Result<TaskSpec, String> {
    let mut t = TaskSpec {
        data_words: 64,
        outer_iters: 2,
        inner_iters: 8,
        stride_words: 1,
        data_nudge: 0,
        period_mul: 4,
        two_paths: true,
        seed: 0,
    };
    for field in rest.split_whitespace() {
        let (key, value) = field
            .split_once('=')
            .ok_or_else(|| format!("task field `{field}` is not key=value"))?;
        let v = num(value)?;
        match key {
            "dw" => t.data_words = v as u32,
            "outer" => t.outer_iters = v as u32,
            "inner" => t.inner_iters = v as u32,
            "stride" => t.stride_words = v as u32,
            "nudge" => t.data_nudge = v as u32,
            "pmul" => t.period_mul = v as u32,
            "paths" => t.two_paths = v >= 2,
            "seed" => t.seed = v,
            other => return Err(format!("unknown task field `{other}`")),
        }
    }
    Ok(t)
}

/// The self-seeding generator PRNG (SplitMix64, as used across the test
/// suite), so points reproduce from their seed alone.
pub struct SplitMix64(pub u64);

impl SplitMix64 {
    /// The next 64 raw bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform-ish draw in `[0, span)`.
    pub fn below(&mut self, span: u64) -> u64 {
        self.next_u64() % span.max(1)
    }

    /// A uniform-ish draw in `lo..=hi`.
    pub fn in_range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.below(hi - lo + 1)
    }
}

/// Generates the fuzz point for a seed: geometry 4–64 sets × 1–8 ways,
/// 2–4 tasks, all four approaches, 1/8 analysis threads. A quarter of
/// the seeds are *pressure* points — tiny caches, stride-1 whole-buffer
/// scans sized at or above the cache capacity — where the CRPD bounds
/// run tight against the ground truth, so an unsound analysis change is
/// caught within few points.
pub fn generate(seed: u64) -> FuzzSpec {
    let mut rng = SplitMix64(seed ^ 0x5EED_F00D_CAFE_D00D);
    let pressure = rng.below(4) == 0;
    let (sets, ways) = if pressure {
        (1 << rng.in_range(2, 3), rng.in_range(1, 2) as u32)
    } else {
        (1 << rng.in_range(2, 6), rng.in_range(1, 8) as u32)
    };
    let count = if pressure { 2 } else { rng.in_range(2, 4) };
    let cache_lines = u64::from(sets * ways);
    let mut spec = FuzzSpec {
        seed,
        sets,
        ways,
        line: 16,
        approach: rng.in_range(1, 4) as u32,
        ctx_switch: [0, 50, 300][rng.below(3) as usize],
        threads: if rng.below(4) == 0 { 8 } else { 1 },
        tasks: Vec::new(),
    };
    for i in 0..count {
        let stride = if pressure { 1 } else { rng.in_range(1, 3) };
        let two_paths = !pressure && rng.below(2) == 0;
        // Buffer sized in cache lines (4 words each) relative to the
        // cache capacity, so useful footprints regularly saturate it.
        let buffer_lines = if pressure {
            rng.in_range(cache_lines, 3 * cache_lines)
        } else {
            rng.in_range(cache_lines / 2 + 1, 2 * cache_lines + 8)
        };
        spec.tasks.push(TaskSpec {
            data_words: (buffer_lines * 4) as u32,
            outer_iters: rng.in_range(2, 6) as u32,
            inner_iters: rng.in_range(8, 48) as u32,
            stride_words: stride as u32,
            data_nudge: rng.below(u64::from(sets)) as u32,
            period_mul: (rng.in_range(2, 5) + 2 * i) as u32,
            two_paths,
            seed: rng.next_u64(),
        });
    }
    spec.sanitize();
    spec
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_sanitized() {
        for seed in 0..200 {
            let spec = generate(seed);
            assert_eq!(spec, generate(seed), "seed {seed} not reproducible");
            let mut again = spec.clone();
            again.sanitize();
            assert_eq!(again, spec, "seed {seed} not sanitized");
            assert!((2..=4).contains(&spec.tasks.len()));
            assert!(spec.sets.is_power_of_two() && (4..=64).contains(&spec.sets));
            assert!((1..=8).contains(&spec.ways));
            assert!((1..=4).contains(&spec.approach));
        }
    }

    #[test]
    fn render_parse_round_trips() {
        for seed in [0u64, 1, 7, 42, 1234, 99999] {
            let spec = generate(seed);
            let parsed = FuzzSpec::parse(&spec.render()).expect("round-trips");
            assert_eq!(parsed, spec, "seed {seed}");
        }
    }

    #[test]
    fn parse_tolerates_comments_and_rejects_garbage() {
        let text = "# a reproducer\nrtfuzz v1\nseed 3\n\ncache 8 2 16\napproach 2\nccs 50\n\
                    threads 8\ntask dw=64 outer=2 inner=8 stride=1 nudge=3 pmul=4 paths=2 seed=9\n\
                    task dw=32 outer=1 inner=4 stride=1 nudge=0 pmul=6 paths=1 seed=11\n";
        let spec = FuzzSpec::parse(text).expect("parses");
        assert_eq!(spec.sets, 8);
        assert_eq!(spec.threads, 8);
        assert_eq!(spec.tasks.len(), 2);
        assert!(spec.tasks[0].two_paths && !spec.tasks[1].two_paths);
        for (bad, needle) in [
            ("nonsense", "header"),
            ("rtfuzz v1\nfrob 3\n", "unknown directive"),
            ("rtfuzz v1\ncache 8 2\n", "cache"),
            ("rtfuzz v1\nseed x\n", "not a non-negative integer"),
            ("rtfuzz v1\nseed 1\n", "at least two tasks"),
            ("rtfuzz v1\ntask dw\ntask dw=1\n", "not key=value"),
            ("rtfuzz v1\ntask zz=1\ntask dw=1\n", "unknown task field"),
        ] {
            let err = FuzzSpec::parse(bad).unwrap_err();
            assert!(err.contains(needle), "`{bad}`: {err}");
        }
    }

    #[test]
    fn sanitize_repairs_wild_values() {
        let mut spec = generate(5);
        spec.sets = 1000;
        spec.ways = 99;
        spec.approach = 9;
        spec.tasks[0].data_words = 1;
        spec.tasks[0].inner_iters = 100_000;
        spec.tasks[0].stride_words = 40;
        spec.sanitize();
        assert_eq!(spec.sets, 64);
        assert_eq!(spec.ways, 8);
        assert_eq!(spec.approach, 4);
        let t = spec.tasks[0];
        let arms = if t.two_paths { 2 } else { 1 };
        assert!(t.inner_iters * t.stride_words <= t.data_words / arms);
    }
}
