//! Greedy reproducer shrinking: once a point fails an oracle, minimize
//! it — drop tasks, halve data footprints, shrink iteration counts,
//! reduce sets/ways — while it keeps failing, using the
//! `proptest-lite` shrinking primitives ([`proptest::shrink`]).

use proptest::shrink;

use crate::oracle::{check, Injection};
use crate::spec::FuzzSpec;

/// Candidate shrinks of `spec`, most aggressive first. Every candidate
/// is sanitized and strictly different from `spec`, so the greedy driver
/// can only move downhill.
pub fn candidates(spec: &FuzzSpec) -> Vec<FuzzSpec> {
    let mut out = Vec::new();
    let mut push = |mut candidate: FuzzSpec| {
        candidate.sanitize();
        if candidate != *spec && !out.contains(&candidate) {
            out.push(candidate);
        }
    };

    // Drop tasks (subsequence shrinking, keeping at least a pair).
    for tasks in shrink::subsequences(&spec.tasks, 2) {
        push(FuzzSpec { tasks, ..spec.clone() });
    }

    // Reduce the cache: halve sets toward 4, shrink ways toward 1.
    for sets in shrink::int_toward(u64::from(spec.sets), 4) {
        push(FuzzSpec { sets: sets as u32, ..spec.clone() });
    }
    for ways in shrink::int_toward(u64::from(spec.ways), 1) {
        push(FuzzSpec { ways: ways as u32, ..spec.clone() });
    }

    // Per-task: halve data footprints, shrink loop shape toward minimal.
    for (i, task) in spec.tasks.iter().enumerate() {
        let mut field = |apply: &dyn Fn(&mut FuzzSpec, u32), candidates: Vec<u64>| {
            for v in candidates {
                let mut candidate = spec.clone();
                apply(&mut candidate, v as u32);
                push(candidate);
            }
        };
        field(&|s, v| s.tasks[i].data_words = v, shrink::int_toward(u64::from(task.data_words), 2));
        field(
            &|s, v| s.tasks[i].inner_iters = v,
            shrink::int_toward(u64::from(task.inner_iters), 1),
        );
        field(
            &|s, v| s.tasks[i].outer_iters = v,
            shrink::int_toward(u64::from(task.outer_iters), 1),
        );
        field(
            &|s, v| s.tasks[i].stride_words = v,
            shrink::int_toward(u64::from(task.stride_words), 1),
        );
        field(&|s, v| s.tasks[i].data_nudge = v, shrink::int_toward(u64::from(task.data_nudge), 0));
        if task.two_paths {
            let mut candidate = spec.clone();
            candidate.tasks[i].two_paths = false;
            push(candidate);
        }
    }
    out
}

/// Shrinks a failing spec to a (locally) minimal reproducer that still
/// fails *some* oracle under the same injection. Returns the minimized
/// spec and the number of accepted shrink steps.
pub fn shrink_spec(
    spec: &FuzzSpec,
    injection: Option<&Injection>,
    max_steps: usize,
) -> (FuzzSpec, usize) {
    shrink::minimize(spec.clone(), max_steps, candidates, |candidate| {
        check(candidate, injection).violation.is_some()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::generate;

    #[test]
    fn candidates_are_sanitized_and_distinct() {
        let spec = generate(17);
        let all = candidates(&spec);
        assert!(!all.is_empty());
        for c in &all {
            assert_ne!(*c, spec);
            let mut again = c.clone();
            again.sanitize();
            assert_eq!(again, *c, "candidate not sanitized: {c:?}");
            assert!(c.tasks.len() >= 2);
        }
        // The most aggressive task-drop candidate leads.
        if spec.tasks.len() > 2 {
            assert!(all[0].tasks.len() < spec.tasks.len());
        }
    }
}
