//! Pins the farm's first real finding: on a set-associative LRU cache
//! the paper's Eq. 2 min-intersection CRPD bound can undercut the
//! simulator, because a preemptor *ages* victim lines it never displaces
//! (Burguière/Cullmann/Reineke, WCET 2009 — five years after the
//! paper). The committed `tests/corpus/lru-aging-8x2.spec` reproducer
//! must (a) still exhibit the gap against the shipped Eq. 7 fixpoint,
//! and (b) stay inside the oracle's sound reference bound. If (a) ever
//! fails the shipped analysis has become aging-aware and this test —
//! plus the oracle's reference construction — should be revisited; if
//! (b) fails the reference bound has regressed.

use std::path::Path;

use rtfuzz::oracle::sound_preemption_lines;
use rtfuzz::spec::FuzzSpec;

fn corpus_spec() -> FuzzSpec {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/corpus/lru-aging-8x2.spec");
    let text = std::fs::read_to_string(&path).expect("read corpus spec");
    FuzzSpec::parse(&text).expect("parse corpus spec")
}

#[test]
fn paper_bound_undercuts_lru_aging_but_reference_holds() {
    let spec = corpus_spec();
    assert_eq!((spec.sets, spec.ways), (8, 2), "reproducer geometry changed");

    let built = rtfuzz::oracle::build(&spec).unwrap();
    let matrix = crpd::CrpdMatrix::compute(spec.approach(), &built.analyzed);
    let params = crpd::WcrtParams {
        miss_penalty: built.model.miss_penalty,
        ctx_switch: spec.ctx_switch,
        max_iterations: 10_000,
    };
    let shipped = crpd::analyze_all(&built.analyzed, &matrix, &params);
    let config = rtsched::SchedConfig {
        geometry: built.geometry,
        model: built.model,
        ctx_switch: spec.ctx_switch,
        horizon: built.periods.iter().copied().max().unwrap().saturating_mul(3),
        variant_policy: rtsched::VariantPolicy::Worst,
        cache_mode: rtsched::CacheMode::Shared,
        replacement: Default::default(),
        l2: None,
    };
    let sched: Vec<rtsched::SchedTask> = built
        .programs
        .iter()
        .zip(&built.periods)
        .enumerate()
        .map(|(i, (p, period))| rtsched::SchedTask::new(p.clone(), *period, i as u32 + 1))
        .collect();
    let report = rtsched::simulate(&sched, &config).unwrap();

    // The aging gap: every preemption displaces no more lines than the
    // paper admits (the farm's oracle 1), yet the measured response
    // still beats the paper's fixpoint by more than the release slack.
    let slack = built.model.cpi + 2 * built.model.miss_penalty + 2 * spec.ctx_switch;
    for p in &report.preemptions {
        assert!(p.reloaded_lines <= matrix.reload(p.preempted, p.preempting));
    }
    assert!(shipped[1].schedulable);
    assert!(
        report.tasks[1].max_response > shipped[1].cycles + slack,
        "the aging gap closed: measured {} vs shipped WCRT {} (+{slack}) — \
         has the analysis become aging-aware?",
        report.tasks[1].max_response,
        shipped[1].cycles
    );

    // The sound per-preemption bound really is larger than Eq. 2 here,
    // and large enough: damage per window never exceeds it.
    let aging = sound_preemption_lines(&built.analyzed[1].mumbs(), built.analyzed[0].all_blocks());
    assert!(
        aging > matrix.reload(1, 0),
        "aging bound {aging} should exceed Eq. 2 cell {}",
        matrix.reload(1, 0)
    );

    // And the full oracle (sound reference WCRT) accepts the point.
    let outcome = rtfuzz::check(&spec, None);
    assert_eq!(outcome.violation, None, "{:?}", outcome.violation);
}
