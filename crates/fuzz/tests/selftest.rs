//! The farm's self-test: inject a known-unsound mutation into the CRPD
//! matrix and assert that a bounded campaign (a) notices and (b) shrinks
//! the failure to a small deterministic reproducer. If this test fails,
//! the fuzzer has lost its ability to detect real soundness bugs.

use rtfuzz::oracle::Injection;
use rtfuzz::{run_campaign, CampaignOptions, FuzzSpec};

/// Scaling every CRPD cell to 90% makes the analyzed bound undercut the
/// simulator on cache-pressure points; the campaign must find one within
/// a small fixed seed budget (seed 6 trips it, verified deterministic)
/// and shrink it to at most 3 tasks.
#[test]
fn injected_crpd_shave_is_found_and_shrunk() {
    let opts = CampaignOptions {
        base_seed: 0,
        max_points: 64,
        batch: 16,
        injection: Some(Injection::ScaleCrpd { num: 9, den: 10 }),
        ..CampaignOptions::default()
    };
    let report = run_campaign(&opts);
    assert_eq!(report.violations.len(), 1, "campaign missed the injected bug");
    let v = &report.violations[0];
    assert!(
        v.shrunk.tasks.len() <= 3,
        "reproducer not minimal: {} tasks\n{}",
        v.shrunk.tasks.len(),
        v.shrunk.render()
    );
    assert!(v.shrunk.tasks.len() <= v.original.tasks.len());

    // The reproducer must still fail under the injection after a render/
    // parse round trip — i.e. the committed artifact, not just the
    // in-memory value, reproduces the bug.
    let reparsed = FuzzSpec::parse(&v.shrunk.render()).expect("reproducer parses");
    let outcome = rtfuzz::check(&reparsed, Some(&Injection::ScaleCrpd { num: 9, den: 10 }));
    assert!(outcome.violation.is_some(), "round-tripped reproducer no longer fails");

    // And it must be clean without the injection: the bug is in the
    // (mutated) analysis, not in the generated system.
    let clean = rtfuzz::check(&reparsed, None);
    assert!(clean.violation.is_none(), "{:?}", clean.violation);
}
