//! Explore how cache geometry and replacement policy move both the CRPD
//! bounds and the measured behaviour — the design-space questions an
//! architect would ask before sizing an L1 for a preemptive system.
//!
//! ```text
//! cargo run --release --example cache_explorer
//! ```

use preempt_wcrt::analysis::{reload_lines, AnalyzedTask, CrpdApproach, TaskParams};
use preempt_wcrt::cache::{CacheGeometry, ReplacementPolicy};
use preempt_wcrt::sched::{simulate, CacheMode, SchedConfig, SchedTask, VariantPolicy};
use preempt_wcrt::wcet::TimingModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = TimingModel::default();
    let mr = preempt_wcrt::workloads::mobile_robot();
    let ed = preempt_wcrt::workloads::edge_detection();

    println!("CRPD bound (lines) for `ed` preempted by `mr` across geometries:\n");
    println!(
        "{:>10} {:>5} {:>9} {:>7} {:>7} {:>7} {:>7}",
        "size", "ways", "sets", "App.1", "App.2", "App.3", "App.4"
    );
    for (sets, ways) in
        [(64u32, 2u32), (128, 2), (128, 4), (256, 4), (512, 4), (512, 8), (1024, 4), (2048, 4)]
    {
        let geometry = CacheGeometry::new(sets, ways, 16)?;
        let ed_task = AnalyzedTask::analyze(
            &ed,
            TaskParams { period: 800_000, priority: 3 },
            geometry,
            model,
        )?;
        let mr_task = AnalyzedTask::analyze(
            &mr,
            TaskParams { period: 100_000, priority: 2 },
            geometry,
            model,
        )?;
        println!(
            "{:>9}B {:>5} {:>9} {:>7} {:>7} {:>7} {:>7}",
            geometry.size_bytes(),
            ways,
            sets,
            reload_lines(CrpdApproach::AllPreemptingLines, &ed_task, &mr_task),
            reload_lines(CrpdApproach::InterTask, &ed_task, &mr_task),
            reload_lines(CrpdApproach::UsefulBlocks, &ed_task, &mr_task),
            reload_lines(CrpdApproach::Combined, &ed_task, &mr_task),
        );
    }

    // Replacement policy: the analysis assumes LRU; measure how far the
    // observed response moves under FIFO and PLRU on a contended cache.
    println!("\nmeasured max response of `ed` on a 2 KiB cache per replacement policy:");
    let geometry = CacheGeometry::new(64, 2, 16)?;
    for policy in ReplacementPolicy::ALL {
        // MR's period is shorter than ED's execution time, so every ED
        // job is preempted several times.
        let tasks =
            vec![SchedTask::new(mr.clone(), 30_000, 2), SchedTask::new(ed.clone(), 800_000, 3)];
        let config = SchedConfig {
            geometry,
            model,
            ctx_switch: 400,
            horizon: 1_600_000,
            variant_policy: VariantPolicy::Worst,
            cache_mode: CacheMode::Shared,
            replacement: policy,
            l2: None,
        };
        let report = simulate_with_policy(&tasks, &config)?;
        println!(
            "  {policy:>5}: max response {:>8}, {} preemption-induced line reloads",
            report.0, report.1
        );
    }
    Ok(())
}

/// Runs the co-simulation and reduces the report to the low task's max
/// response plus the total preemption-induced reloads.
fn simulate_with_policy(
    tasks: &[SchedTask],
    config: &SchedConfig,
) -> Result<(u64, usize), Box<dyn std::error::Error>> {
    let report = simulate(tasks, config)?;
    let lo = report.tasks.last().expect("non-empty");
    let reloads = report.preemptions.iter().map(|p| p.reloaded_lines).sum();
    Ok((lo.max_response, reloads))
}
