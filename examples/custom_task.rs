//! Bring your own task: write it in TRISC assembly, assemble it, and run
//! the full analysis pipeline against an existing workload.
//!
//! ```text
//! cargo run --release --example custom_task
//! ```

use preempt_wcrt::analysis::{
    dataflow_useful, reload_lines, AnalyzedTask, CrpdApproach, TaskParams,
};
use preempt_wcrt::cache::CacheGeometry;
use preempt_wcrt::program::asm::assemble;
use preempt_wcrt::program::cfg::Cfg;
use preempt_wcrt::program::Simulator;
use preempt_wcrt::wcet::{estimate_wcet, structural_wcet_bound, TimingModel};

/// A small FIR filter written directly in assembly. Loop bounds are
/// declared with `.bound`, exactly the annotations a WCET tool needs.
const FIR_SOURCE: &str = r#"
    .text 0x30000
    .data 0x150000
samples: .space 64
coeffs:  .word 3, -1, 4, -1, 5, -9, 2, 6
output:  .space 57
    .text
start:
    li   r10, samples
    li   r11, coeffs
    li   r12, output
    li   r3, 57          ; output index counts down
outer:
    ; acc = sum over 8 taps of samples[i + t] * coeffs[t]
    li   r4, 0           ; acc
    li   r5, 8           ; tap counter
    add  r6, r10, r0     ; sample pointer (reset per output)
    add  r7, r11, r0     ; coeff pointer
inner:
    ld   r8, 0(r6)
    ld   r9, 0(r7)
    mul  r8, r8, r9
    add  r4, r4, r8
    addi r6, r6, 4
    addi r7, r7, 4
    addi r5, r5, -1
    bne  r5, r0, inner
    .bound inner, 8
    st   r4, 0(r12)
    addi r10, r10, 4     ; slide the window
    addi r12, r12, 4
    addi r3, r3, -1
    bne  r3, r0, outer
    .bound outer, 57
    halt
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let geometry = CacheGeometry::paper_l1();
    let model = TimingModel::default();

    // 1. Assemble and sanity-run.
    let fir = assemble("fir", FIR_SOURCE)?;
    let mut sim = Simulator::new(&fir);
    let trace = sim.run_to_halt()?;
    println!(
        "fir: {} static instructions, {} executed, {} memory accesses",
        fir.len(),
        trace.instructions,
        trace.accesses.len()
    );

    // 2. Structure: CFG and loop bounds drive the structural WCET bound.
    let cfg = Cfg::from_program(&fir);
    println!("CFG: {} basic blocks, {} declared loop bounds", cfg.len(), fir.loop_bounds().len());
    let est = estimate_wcet(&fir, geometry, model)?;
    let structural = structural_wcet_bound(&fir, model, 1)?;
    println!("WCET: simulated {} cycles <= structural all-miss bound {}", est.cycles, structural);
    assert!(est.cycles <= structural);

    // 3. Useful-block analysis, both formulations.
    let task = AnalyzedTask::analyze(
        &fir,
        TaskParams { period: 1_000_000, priority: 5 },
        geometry,
        model,
    )?;
    let df = dataflow_useful(&fir, geometry)?;
    println!(
        "useful blocks: exact sweep {} lines, RMB/LMB dataflow {} lines (footprint {})",
        task.useful_line_bound(),
        df.max_line_bound(),
        task.all_blocks().line_bound()
    );

    // 4. CRPD of the FIR when preempted by the robot controller.
    let mr = AnalyzedTask::analyze(
        &preempt_wcrt::workloads::mobile_robot(),
        TaskParams { period: 100_000, priority: 2 },
        geometry,
        model,
    )?;
    println!("\nreload bound for `fir` preempted by `mr`:");
    for approach in CrpdApproach::ALL {
        println!("  {approach}: {:>3} lines", reload_lines(approach, &task, &mr));
    }
    Ok(())
}
