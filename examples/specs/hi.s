; High-priority task: walks a 4-word buffer in a bounded loop, so its
; useful cache blocks make the CRPD terms of the analysis non-trivial.
.data 0x100000
buf: .word 1,2,3,4
.text 0x1000
start: li r1, buf
li r3, 4
loop: ld r2, 0(r1)
addi r1, r1, 4
addi r3, r3, -1
bne r3, r0, loop
.bound loop, 4
halt
