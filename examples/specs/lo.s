; Low-priority task: straight-line reads of a two-word buffer. Preempted
; by `hi`, so its WCRT includes interference, CRPD and context switches.
.data 0x100400
buf: .word 7,8
.text 0x2000
start: li r1, buf
ld r2, 0(r1)
ld r4, 4(r1)
add r2, r2, r4
halt
