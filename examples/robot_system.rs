//! The paper's Experiment I scenario end to end: a mobile robot whose
//! control task (MR), obstacle-image edge detection (ED) and OFDM
//! transmitter share one CPU and one L1 cache.
//!
//! The example analyzes the WCRT of every task under all four CRPD
//! approaches and then *measures* actual response times with the
//! preemptive co-simulation, verifying that every bound holds.
//!
//! ```text
//! cargo run --release --example robot_system
//! ```

use preempt_wcrt::analysis::{
    analyze_all, AnalyzedTask, CrpdApproach, CrpdMatrix, TaskParams, WcrtParams,
};
use preempt_wcrt::cache::CacheGeometry;
use preempt_wcrt::sched::{
    render_timeline, simulate, CacheMode, SchedConfig, SchedTask, VariantPolicy,
};
use preempt_wcrt::wcet::TimingModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let geometry = CacheGeometry::paper_l1();
    let model = TimingModel::default();

    // Periods keep the paper's utilization ratios (Table I).
    let programs = [
        preempt_wcrt::workloads::mobile_robot(),
        preempt_wcrt::workloads::edge_detection(),
        preempt_wcrt::workloads::ofdm_transmitter(),
    ];
    let periods = [100_000u64, 500_000, 2_500_000];
    let priorities = [2u32, 3, 4];

    let tasks: Vec<AnalyzedTask> = programs
        .iter()
        .zip(periods)
        .zip(priorities)
        .map(|((p, period), priority)| {
            AnalyzedTask::analyze(p, TaskParams { period, priority }, geometry, model)
        })
        .collect::<Result<_, _>>()?;
    for t in &tasks {
        println!("{t}");
    }

    // WCRT under each approach.
    let params = WcrtParams { miss_penalty: 20, ctx_switch: 400, max_iterations: 10_000 };
    println!("\nWCRT estimates (cycles):");
    println!("{:>8} {:>10} {:>10} {:>10} {:>10}", "task", "App.1", "App.2", "App.3", "App.4");
    let mut per_approach = Vec::new();
    for approach in CrpdApproach::ALL {
        let matrix = CrpdMatrix::compute(approach, &tasks);
        per_approach.push(analyze_all(&tasks, &matrix, &params));
    }
    for (i, t) in tasks.iter().enumerate() {
        println!(
            "{:>8} {:>10} {:>10} {:>10} {:>10}",
            t.name(),
            per_approach[0][i].cycles,
            per_approach[1][i].cycles,
            per_approach[2][i].cycles,
            per_approach[3][i].cycles,
        );
    }

    // Measure actual response times over four OFDM periods.
    let sched_tasks: Vec<SchedTask> = programs
        .iter()
        .zip(periods)
        .zip(priorities)
        .map(|((p, period), priority)| SchedTask::new(p.clone(), period, priority))
        .collect();
    let config = SchedConfig {
        geometry,
        model,
        ctx_switch: 400,
        horizon: periods[2] * 4,
        variant_policy: VariantPolicy::Worst,
        cache_mode: CacheMode::Shared,
        replacement: Default::default(),
        l2: None,
    };
    let report = simulate(&sched_tasks, &config)?;
    println!("\nmeasured over {} cycles:", report.end_time);
    for (i, tr) in report.tasks.iter().enumerate() {
        println!(
            "  {:>8}: max response {:>8} (mean {:>8}), {} jobs, {} preemptions, {} deadline misses",
            tr.name,
            tr.max_response,
            tr.mean_response,
            tr.completed,
            tr.preemptions,
            tr.deadline_misses
        );
        for (a, approach) in CrpdApproach::ALL.iter().enumerate() {
            assert!(
                tr.max_response <= per_approach[a][i].cycles,
                "{} bound violated for {}",
                approach,
                tr.name
            );
        }
    }
    println!("\nall four WCRT bounds hold against the measured responses ✓");

    // A glimpse of the first OFDM period (the paper's Fig. 1).
    let names: Vec<&str> = report.tasks.iter().map(|t| t.name.as_str()).collect();
    println!("\nschedule of the first OFDM period:");
    print!("{}", render_timeline(&report.slices, &names, &periods, periods[2], 90));
    Ok(())
}
