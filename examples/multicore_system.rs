//! Partitioned multicore (the paper's §IX future work, second item):
//! assign tasks to cores with first-fit-decreasing, run the per-core
//! CRPD/WCRT analysis, validate each core against its own co-simulation,
//! and show how a shared L2 changes the bounds.
//!
//! ```text
//! cargo run --release --example multicore_system
//! ```

use preempt_wcrt::analysis::{
    first_fit_assignment, multicore_analyze, AnalyzedTask, SharedL2, TaskParams, WcrtParams,
};
use preempt_wcrt::cache::CacheGeometry;
use preempt_wcrt::sched::{simulate, CacheMode, SchedConfig, SchedTask, VariantPolicy};
use preempt_wcrt::wcet::{HierarchyTimingModel, TimingModel};
use preempt_wcrt::workloads::kernels;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let l1 = CacheGeometry::new(64, 2, 16)?; // private 2 KiB L1 per core
    let model = TimingModel::default();

    let programs = vec![
        kernels::fir_filter(0x0005_0000, 0x0030_0000, 8, 32),
        kernels::histogram(0x0005_4000, 0x0030_0400, 256, 32),
        kernels::crc32(0x0005_8000, 0x0030_0800, 96),
        kernels::matrix_multiply(0x0005_c000, 0x0030_1000, 8),
        kernels::insertion_sort(0x0006_0000, 0x0030_2000, 48),
    ];
    let periods = [30_000u64, 60_000, 90_000, 200_000, 400_000];
    let tasks: Vec<AnalyzedTask> = programs
        .iter()
        .zip(periods)
        .zip(1u32..)
        .map(|((p, period), priority)| {
            AnalyzedTask::analyze(p, TaskParams { period, priority }, l1, model)
        })
        .collect::<Result<_, _>>()?;

    // 1. Place the five tasks on two cores. The capacity cap is tight so
    // the placement actually spreads the load.
    let assignment = first_fit_assignment(&tasks, 2, 0.17)?;
    println!("first-fit-decreasing assignment (capacity 0.17 per core):");
    for (core, members) in assignment.cores.iter().enumerate() {
        let names: Vec<&str> = members.iter().map(|i| tasks[*i].name()).collect();
        println!("  core {core}: {names:?}");
    }

    // 2. Per-core WCRT analysis (private L1s; no cross-core interference).
    let params = WcrtParams { miss_penalty: 20, ctx_switch: 300, max_iterations: 10_000 };
    let reports = multicore_analyze(&tasks, &programs, &assignment, None, &params)?;
    println!("\nper-core WCRT (private L1s):");
    for report in &reports {
        for (task, wcet, result) in &report.tasks {
            println!("  core {} {:>10}: C={wcet:>7}  {result}", report.core, tasks[*task].name());
        }
    }

    // 3. Validate each core against an independent co-simulation.
    for report in &reports {
        let members = &assignment.cores[report.core];
        if members.is_empty() {
            continue;
        }
        let sched: Vec<SchedTask> = members
            .iter()
            .map(|i| SchedTask::new(programs[*i].clone(), periods[*i], tasks[*i].params().priority))
            .collect();
        let horizon = members.iter().map(|i| periods[*i]).max().unwrap_or(1) * 3;
        let config = SchedConfig {
            geometry: l1,
            model,
            ctx_switch: 300,
            horizon,
            variant_policy: VariantPolicy::Worst,
            cache_mode: CacheMode::Shared, // shared within the core
            replacement: Default::default(),
            l2: None,
        };
        let sim = simulate(&sched, &config)?;
        for (k, (task, _, result)) in report.tasks.iter().enumerate() {
            assert!(
                sim.tasks[k].max_response <= result.cycles + model.cpi + 2 * model.miss_penalty,
                "core {} task {}: measured {} > bound {}",
                report.core,
                tasks[*task].name(),
                sim.tasks[k].max_response,
                result.cycles
            );
        }
    }
    println!("\nevery core's measured responses stay within its bounds ✓");

    // 4. The same system behind a shared L2.
    let shared = SharedL2 {
        geometry: CacheGeometry::new(1024, 8, 16)?,
        model: HierarchyTimingModel { cpi: 1, l2_penalty: 6, mem_penalty: 40 },
    };
    let with_l2 = multicore_analyze(&tasks, &programs, &assignment, Some(shared), &params)?;
    println!("\nwith a shared 128 KiB L2 (cross-core interference bounded):");
    for report in &with_l2 {
        for (task, wcet, result) in &report.tasks {
            println!("  core {} {:>10}: C={wcet:>7}  {result}", report.core, tasks[*task].name());
        }
    }
    Ok(())
}
