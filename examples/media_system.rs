//! The paper's Experiment II scenario: an ADPCM voice coder and decoder
//! plus an MPEG IDCT kernel, swept across cache-miss penalties to find
//! where each CRPD approach stops being able to certify the system.
//!
//! ```text
//! cargo run --release --example media_system
//! ```

use preempt_wcrt::analysis::{
    analyze_all, AnalyzedTask, CrpdApproach, CrpdMatrix, TaskParams, WcrtParams,
};
use preempt_wcrt::cache::CacheGeometry;
use preempt_wcrt::wcet::TimingModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let geometry = CacheGeometry::paper_l1();

    let programs = [
        preempt_wcrt::workloads::idct(),
        preempt_wcrt::workloads::adpcm_decoder(),
        preempt_wcrt::workloads::adpcm_encoder(),
    ];
    // Deliberately tight periods: the system is near the schedulability
    // cliff, so looser CRPD bounds tip tasks over the edge first.
    let periods = [48_000u64, 110_000, 320_000];
    let priorities = [2u32, 3, 4];

    println!("schedulability verdict per approach as the miss penalty grows");
    println!("(✓ = every task provably meets its deadline):\n");
    println!("{:>6} {:>7} {:>7} {:>7} {:>7}", "Cmiss", "App.1", "App.2", "App.3", "App.4");
    for cmiss in [10u64, 15, 20, 25, 30, 35, 40] {
        let model = TimingModel::with_miss_penalty(cmiss);
        let tasks: Vec<AnalyzedTask> = programs
            .iter()
            .zip(periods)
            .zip(priorities)
            .map(|((p, period), priority)| {
                AnalyzedTask::analyze(p, TaskParams { period, priority }, geometry, model)
            })
            .collect::<Result<_, _>>()?;
        let params = WcrtParams { miss_penalty: cmiss, ctx_switch: 400, max_iterations: 10_000 };
        let mut row = format!("{cmiss:>6}");
        for approach in CrpdApproach::ALL {
            let matrix = CrpdMatrix::compute(approach, &tasks);
            let ok = analyze_all(&tasks, &matrix, &params).iter().all(|r| r.schedulable);
            row.push_str(&format!(" {:>7}", if ok { "✓" } else { "✗" }));
        }
        println!("{row}");
    }
    println!(
        "\nA tighter CRPD bound certifies the same hardware at higher miss\n\
         penalties — the practical payoff of the paper's combined analysis."
    );
    Ok(())
}
