//! The paper's future work (§IX), realized: CRPD-aware WCRT analysis for
//! a two-level (L1 + L2) memory hierarchy, validated against the
//! co-simulation.
//!
//! A small L1 backed by a large L2 turns most preemption reloads into
//! cheap L2 hits: the two-level bound charges the memory penalty only for
//! blocks that can also be displaced from the L2.
//!
//! ```text
//! cargo run --release --example two_level
//! ```

use preempt_wcrt::analysis::{
    analyze_all, two_level_analyze_all, AnalyzedTask, CrpdApproach, CrpdMatrix, TaskParams,
    TwoLevelParams, WcrtParams,
};
use preempt_wcrt::cache::CacheGeometry;
use preempt_wcrt::sched::{simulate, CacheMode, L2Config, SchedConfig, SchedTask, VariantPolicy};
use preempt_wcrt::wcet::{HierarchyTimingModel, TimingModel};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small, contended L1 (4 KiB) backed by a 64 KiB L2.
    let l1 = CacheGeometry::new(128, 2, 16)?;
    let l2 = CacheGeometry::new(2048, 4, 16)?;
    let hierarchy = HierarchyTimingModel { cpi: 1, l2_penalty: 6, mem_penalty: 40 };
    // Single-level comparison point: every L1 miss goes to memory.
    let flat = TimingModel { cpi: 1, miss_penalty: hierarchy.mem_penalty };

    let programs =
        vec![preempt_wcrt::workloads::mobile_robot(), preempt_wcrt::workloads::edge_detection()];
    let periods = [140_000u64, 1_400_000];
    let priorities = [2u32, 3];
    let tasks: Vec<AnalyzedTask> = programs
        .iter()
        .zip(periods)
        .zip(priorities)
        .map(|((p, period), priority)| {
            AnalyzedTask::analyze(p, TaskParams { period, priority }, l1, flat)
        })
        .collect::<Result<_, _>>()?;

    // Single-level WCRT (memory-only behind the L1).
    let matrix = CrpdMatrix::compute(CrpdApproach::Combined, &tasks);
    let single = analyze_all(
        &tasks,
        &matrix,
        &WcrtParams {
            miss_penalty: hierarchy.mem_penalty,
            ctx_switch: 300,
            max_iterations: 10_000,
        },
    );
    // Two-level WCRT.
    let params = TwoLevelParams {
        l2_geometry: l2,
        model: hierarchy,
        ctx_switch: 300,
        max_iterations: 10_000,
    };
    let two = two_level_analyze_all(&tasks, &programs, &params)?;

    println!("WCRT bounds with and without an L2 ({l1} + {l2}):\n");
    println!("{:>6} {:>14} {:>14}", "task", "L1+memory", "L1+L2+memory");
    for (i, t) in tasks.iter().enumerate() {
        println!("{:>6} {:>14} {:>14}", t.name(), single[i].cycles, two[i].cycles);
    }

    // Measure with the co-simulation in both configurations.
    let sched_tasks: Vec<SchedTask> = programs
        .iter()
        .zip(periods)
        .zip(priorities)
        .map(|((p, period), priority)| SchedTask::new(p.clone(), period, priority))
        .collect();
    let mut config = SchedConfig {
        geometry: l1,
        model: flat,
        ctx_switch: 300,
        horizon: periods[1] * 2,
        variant_policy: VariantPolicy::Worst,
        cache_mode: CacheMode::Shared,
        replacement: Default::default(),
        l2: None,
    };
    let flat_report = simulate(&sched_tasks, &config)?;
    config.l2 = Some(L2Config { geometry: l2, penalty: hierarchy.l2_penalty });
    let two_report = simulate(&sched_tasks, &config)?;

    println!("\nmeasured max responses:");
    println!("{:>6} {:>14} {:>14}", "task", "L1+memory", "L1+L2+memory");
    for i in 0..tasks.len() {
        println!(
            "{:>6} {:>14} {:>14}",
            tasks[i].name(),
            flat_report.tasks[i].max_response,
            two_report.tasks[i].max_response
        );
        assert!(flat_report.tasks[i].max_response <= single[i].cycles, "single-level bound");
        assert!(two_report.tasks[i].max_response <= two[i].cycles, "two-level bound");
    }
    println!("\nboth bounds hold against their measurements ✓");
    Ok(())
}
