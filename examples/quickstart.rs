//! Quick start: bound the cache-related preemption delay between two
//! tasks and fold it into their worst-case response times.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use preempt_wcrt::analysis::{
    analyze_all, reload_lines, AnalyzedTask, CrpdApproach, CrpdMatrix, TaskParams, WcrtParams,
};
use preempt_wcrt::cache::CacheGeometry;
use preempt_wcrt::wcet::TimingModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's cache: 32 KiB, 4-way set associative, 16-byte lines.
    let geometry = CacheGeometry::paper_l1();
    let model = TimingModel::default(); // 1 cycle/instr + 20 cycles/miss

    // A high-priority robot controller that may preempt a low-priority
    // edge-detection job (priorities: smaller value = higher).
    let mr = AnalyzedTask::analyze(
        &preempt_wcrt::workloads::mobile_robot(),
        TaskParams { period: 100_000, priority: 1 },
        geometry,
        model,
    )?;
    let ed = AnalyzedTask::analyze(
        &preempt_wcrt::workloads::edge_detection(),
        TaskParams { period: 800_000, priority: 2 },
        geometry,
        model,
    )?;
    println!("analyzed tasks:");
    println!("  {mr}");
    println!("  {ed}");

    // How many cache lines must ED reload after one MR preemption, under
    // each of the paper's four approaches?
    println!("\nreload bound for `ed` preempted by `mr`:");
    for approach in CrpdApproach::ALL {
        println!("  {approach}: {:>4} lines", reload_lines(approach, &ed, &mr));
    }

    // Fold the tightest bound into the response-time recurrence (Eq. 7).
    let tasks = vec![mr, ed];
    let matrix = CrpdMatrix::compute(CrpdApproach::Combined, &tasks);
    let params = WcrtParams { miss_penalty: 20, ctx_switch: 400, max_iterations: 10_000 };
    println!("\nworst-case response times (combined approach):");
    for (task, result) in tasks.iter().zip(analyze_all(&tasks, &matrix, &params)) {
        println!("  {}: {}", task.name(), result);
    }
    Ok(())
}
